package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dsa/internal/engine"
	"dsa/internal/metrics"
	"dsa/internal/sim"
	"dsa/internal/workload/catalog"
)

// workerEnv marks a re-execution of this test binary as a dist worker.
const workerEnv = "DSA_DIST_TEST_WORKER"

// serverEnv marks a re-execution of this test binary as a TCP
// serve-worker; its value is the addr-file the server publishes its
// bound address to. A separate process is what lets tests kill a
// remote worker mid-batch (test/crash calls os.Exit) without taking
// the test binary down with it.
const serverEnv = "DSA_DIST_TEST_SERVER"

// serverTokenEnv carries the re-exec'd server's -auth-token.
const serverTokenEnv = "DSA_DIST_TEST_TOKEN"

func TestMain(m *testing.M) {
	registerTestHandlers()
	if os.Getenv(workerEnv) == "1" {
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if addrFile := os.Getenv(serverEnv); addrFile != "" {
		o := ServeOptions{AuthToken: os.Getenv(serverTokenEnv)}
		if err := ListenAndServe("127.0.0.1:0", addrFile, o); err != nil {
			fmt.Fprintln(os.Stderr, "serve-worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// cellWork is the shared cell implementation: the same function backs
// the in-process Job.Run and the remote handler, so local and
// distributed execution are byte-identical by construction.
func cellWork(env engine.Env, key string) (interface{}, error) {
	shared, err := catalog.Get(env.Catalog, "test/shared", func() (uint64, error) {
		return 40 + 2, nil
	})
	if err != nil {
		return nil, err
	}
	draw := env.RNG.Uint64() % 100000
	return engine.RowBatch{{key, int(draw), float64(draw) / 7, sim.Time(draw), draw%2 == 0, shared}}, nil
}

func registerTestHandlers() {
	Handle("test/rows", func(ctx context.Context, c Call) (interface{}, error) {
		return cellWork(c.Env, c.Key)
	})
	Handle("test/crash", func(ctx context.Context, c Call) (interface{}, error) {
		os.Exit(3)
		return nil, nil
	})
	Handle("test/panic", func(ctx context.Context, c Call) (interface{}, error) {
		panic("remote boom")
	})
	Handle("test/error", func(ctx context.Context, c Call) (interface{}, error) {
		return nil, fmt.Errorf("deliberate failure in %s", c.Key)
	})
	Handle("test/sleep", func(ctx context.Context, c Call) (interface{}, error) {
		ms, _ := strconv.Atoi(c.Spec.Args["ms"])
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return c.Key, nil
	})
	Handle("test/stderr", func(ctx context.Context, c Call) (interface{}, error) {
		fmt.Fprintf(os.Stderr, "grumble from %s\nsecond line\n", c.Key)
		return c.Key, nil
	})
	Handle("test/crash-midline", func(ctx context.Context, c Call) (interface{}, error) {
		// Dying words without a trailing newline: the dispatcher's
		// prefixer must flush them at teardown instead of losing them.
		fmt.Fprintf(os.Stderr, "dying words from %s", c.Key)
		os.Stderr.Sync()
		os.Exit(3)
		return nil, nil
	})
}

// newTestPool builds a pool of this test binary in worker mode.
func newTestPool(t *testing.T, workers int, stderr io.Writer) *Pool {
	return newBatchPool(t, workers, 0, stderr)
}

// newBatchPool is newTestPool with an explicit protocol batch size.
func newBatchPool(t *testing.T, workers, batch int, stderr io.Writer) *Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(Options{
		Workers: workers,
		Batch:   batch,
		Command: exe,
		Env:     append(os.Environ(), workerEnv+"=1"),
		Stderr:  stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// rowJobs builds n cells that run cellWork locally and carry specs for
// the test/rows handler remotely.
func rowJobs(n int) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		key := fmt.Sprintf("cell-%02d", i)
		jobs[i] = engine.Job{
			Key:  key,
			Spec: &engine.Spec{Task: "test/rows"},
			Run: func(ctx context.Context, env engine.Env) (interface{}, error) {
				return cellWork(env, key)
			},
		}
	}
	return jobs
}

// renderSweep runs jobs through an engine into a table.
func renderSweep(t *testing.T, opts engine.Options, jobs []engine.Job) string {
	t.Helper()
	tb := &metrics.Table{Title: "dist", Header: []string{"key", "draw", "ratio", "time", "even", "shared"}}
	eng := engine.New(opts)
	if _, err := eng.FillTable(context.Background(), tb, jobs); err != nil {
		t.Fatal(err)
	}
	return tb.String()
}

// TestDistMatchesInProcess is the core contract: a sweep through two
// worker processes renders byte-identically to the in-process pool,
// including named types (sim.Time) round-tripped through gob.
func TestDistMatchesInProcess(t *testing.T) {
	local := renderSweep(t, engine.Options{Parallel: 2, Seed: 7}, rowJobs(12))

	pool := newTestPool(t, 2, io.Discard)
	dist := renderSweep(t, engine.Options{Seed: 7, Executor: pool}, rowJobs(12))

	if local != dist {
		t.Errorf("distributed output diverged from in-process:\nlocal:\n%s\ndist:\n%s", local, dist)
	}
	st := pool.Stats()
	if st.Remote != 12 || st.Local != 0 {
		t.Errorf("stats = %+v, want 12 remote cells", st)
	}
}

// TestBatchedDistMatchesInProcess: batching cells onto protocol
// frames must change round-trip counts, never bytes — at several batch
// sizes including ones that do not divide the cell count.
func TestBatchedDistMatchesInProcess(t *testing.T) {
	local := renderSweep(t, engine.Options{Parallel: 2, Seed: 7}, rowJobs(13))
	for _, batch := range []int{2, 5, 64} {
		pool := newBatchPool(t, 2, batch, io.Discard)
		dist := renderSweep(t, engine.Options{Seed: 7, Executor: pool}, rowJobs(13))
		if local != dist {
			t.Errorf("batch=%d output diverged from in-process:\nlocal:\n%s\ndist:\n%s", batch, local, dist)
		}
		st := pool.Stats()
		if st.Remote != 13 || st.Local != 0 || st.Crashes != 0 {
			t.Errorf("batch=%d stats = %+v, want 13 remote cells", batch, st)
		}
	}
}

// TestBatchCrashContainedPerBatch: a worker dying mid-batch costs
// exactly the in-flight batch — every cell of it a contained FAILED
// row — while the rest of the sweep completes remotely on the
// respawned slot.
func TestBatchCrashContainedPerBatch(t *testing.T) {
	jobs := rowJobs(12)
	jobs[2] = engine.Job{Key: "cell-02", Spec: &engine.Spec{Task: "test/crash"}}

	pool := newBatchPool(t, 1, 3, io.Discard)
	eng := engine.New(engine.Options{Seed: 1, Executor: pool})
	results := eng.Run(context.Background(), jobs)

	var failed int
	for _, r := range results {
		if r.Panicked {
			failed++
			if !strings.Contains(r.Err.Error(), "crashed") {
				t.Errorf("%s: error %v, want worker-crash containment", r.Key, r.Err)
			}
		} else if r.Err != nil {
			t.Errorf("%s: unexpected error %v", r.Key, r.Err)
		}
	}
	st := pool.Stats()
	// One slot at batch 3: cells 0..2 were in flight, all three lost.
	if failed != 3 || st.Crashes != 3 {
		t.Errorf("failed=%d crashes=%d (stats %+v), want the 3-cell batch contained", failed, st.Crashes, st)
	}
	if st.Respawns < 1 {
		t.Errorf("respawns = %d, want >= 1 (slot must recover)", st.Respawns)
	}
	if st.Remote != 9 {
		t.Errorf("remote = %d, want 9 (every healthy batch stays distributed)", st.Remote)
	}
	// In a batch containing one panicking cell the worker survives and
	// the batch's other cells still succeed.
	jobs = rowJobs(4)
	jobs[1] = engine.Job{Key: "cell-01", Spec: &engine.Spec{Task: "test/panic"}}
	pool2 := newBatchPool(t, 1, 4, io.Discard)
	eng2 := engine.New(engine.Options{Seed: 1, Executor: pool2})
	for _, r := range eng2.Run(context.Background(), jobs) {
		if r.Key == "cell-01" {
			if !r.Panicked || !strings.Contains(r.Err.Error(), "remote boom") {
				t.Errorf("panicking cell = %+v, want contained panic", r)
			}
		} else if r.Err != nil {
			t.Errorf("%s failed alongside a contained panic: %v", r.Key, r.Err)
		}
	}
	if st := pool2.Stats(); st.Crashes != 0 || st.Remote != 4 {
		t.Errorf("stats = %+v, want 4 remote cells and no crash (panic contained in-worker)", st)
	}
}

// TestWorkerCrashContained kills a worker mid-cell (os.Exit in the
// handler) and requires the crashed cell to surface as a contained
// FAILED cell while the rest of the sweep completes remotely on a
// respawned worker. One slot, so the respawn is the only way the
// remaining cells can stay remote.
func TestWorkerCrashContained(t *testing.T) {
	jobs := rowJobs(8)
	jobs[3] = engine.Job{Key: "cell-03", Spec: &engine.Spec{Task: "test/crash"}}

	pool := newTestPool(t, 1, io.Discard)
	eng := engine.New(engine.Options{Seed: 1, Executor: pool})
	results := eng.Run(context.Background(), jobs)

	for _, r := range results {
		if r.Key == "cell-03" {
			if !r.Panicked {
				t.Fatalf("crashed cell result = %+v, want contained panic", r)
			}
			pe, ok := r.Err.(*engine.PanicError)
			if !ok || !strings.Contains(pe.Error(), "crashed") {
				t.Errorf("crashed cell error = %v, want worker-crash PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: unexpected error %v", r.Key, r.Err)
		}
	}
	st := pool.Stats()
	if st.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", st.Crashes)
	}
	if st.Respawns < 1 {
		t.Errorf("respawns = %d, want >= 1 (slot must recover)", st.Respawns)
	}
	if st.Remote != 7 {
		t.Errorf("remote = %d, want 7 (every healthy cell stays distributed)", st.Remote)
	}
}

// TestRemotePanicMatchesLocalContainment: a panic inside a worker must
// render the same FAILED row an in-process contained panic renders.
func TestRemotePanicMatchesLocalContainment(t *testing.T) {
	mkJobs := func() []engine.Job {
		jobs := rowJobs(3)
		jobs[1] = engine.Job{
			Key:  "cell-01",
			Spec: &engine.Spec{Task: "test/panic"},
			Run: func(ctx context.Context, env engine.Env) (interface{}, error) {
				panic("remote boom")
			},
		}
		return jobs
	}
	local := renderSweep(t, engine.Options{Parallel: 2, Seed: 3}, mkJobs())
	pool := newTestPool(t, 2, io.Discard)
	dist := renderSweep(t, engine.Options{Seed: 3, Executor: pool}, mkJobs())
	if local != dist {
		t.Errorf("contained panic rendered differently:\nlocal:\n%s\ndist:\n%s", local, dist)
	}
	if !strings.Contains(dist, "FAILED: remote boom") {
		t.Errorf("FAILED row missing panic value:\n%s", dist)
	}
}

// TestRemoteErrorStaysOrdinary: a handler error must come back as an
// ordinary error (aborting FillTable), not a contained panic.
func TestRemoteErrorStaysOrdinary(t *testing.T) {
	jobs := rowJobs(3)
	jobs[2] = engine.Job{Key: "cell-02", Spec: &engine.Spec{Task: "test/error"}}
	pool := newTestPool(t, 2, io.Discard)
	eng := engine.New(engine.Options{Executor: pool})
	tb := &metrics.Table{Header: []string{"k", "v", "r", "t", "e", "s"}}
	_, err := eng.FillTable(context.Background(), tb, jobs)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure in cell-02") {
		t.Errorf("FillTable error = %v, want the remote cell's error", err)
	}
}

// TestCancellationKillsChildren cancels a sweep whose first cells
// sleep far longer than the test budget; the pool must kill the
// children and report every unfinished cell with the context error.
func TestCancellationKillsChildren(t *testing.T) {
	jobs := make([]engine.Job, 6)
	for i := range jobs {
		key := fmt.Sprintf("sleep-%d", i)
		jobs[i] = engine.Job{Key: key, Spec: &engine.Spec{
			Task: "test/sleep", Args: map[string]string{"ms": "60000"},
		}}
	}
	pool := newTestPool(t, 2, io.Discard)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond) // let the workers start their cells
		cancel()
	}()
	start := time.Now()
	eng := engine.New(engine.Options{Executor: pool})
	results := eng.Run(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; children were not killed", elapsed)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s completed despite cancellation", r.Key)
		}
	}
}

// TestConcurrentSweepsSharePool: two sweeps executing concurrently on
// one pool — the battery scheduler's shape — must each render
// byte-identically to their in-process runs, with every cell remote:
// the worker slots serve whichever sweep's batch comes next instead of
// being torn down and respawned per sweep.
func TestConcurrentSweepsSharePool(t *testing.T) {
	localA := renderSweep(t, engine.Options{Parallel: 2, Seed: 7}, rowJobs(12))
	localB := renderSweep(t, engine.Options{Parallel: 2, Seed: 31}, rowJobs(9))

	pool := newBatchPool(t, 2, 2, io.Discard)
	var wg sync.WaitGroup
	var distA, distB string
	wg.Add(2)
	go func() {
		defer wg.Done()
		distA = renderSweep(t, engine.Options{Seed: 7, Executor: pool}, rowJobs(12))
	}()
	go func() {
		defer wg.Done()
		distB = renderSweep(t, engine.Options{Seed: 31, Executor: pool}, rowJobs(9))
	}()
	wg.Wait()
	if distA != localA {
		t.Errorf("sweep A diverged under concurrent Execute:\n%s\nwant:\n%s", distA, localA)
	}
	if distB != localB {
		t.Errorf("sweep B diverged under concurrent Execute:\n%s\nwant:\n%s", distB, localB)
	}
	st := pool.Stats()
	if st.Remote != 21 || st.Local != 0 || st.Crashes != 0 {
		t.Errorf("stats = %+v, want all 21 cells remote across both sweeps", st)
	}
}

// TestCancelOneSweepLeavesOtherIntact: cancelling one of two sweeps
// sharing a pool must not disturb the other — its cells stay remote,
// complete, and byte-identical — because the cancellation kill is
// scoped to children serving the cancelled sweep's context.
func TestCancelOneSweepLeavesOtherIntact(t *testing.T) {
	want := renderSweep(t, engine.Options{Parallel: 2, Seed: 7}, rowJobs(12))

	pool := newTestPool(t, 2, io.Discard)
	sleepJobs := make([]engine.Job, 4)
	for i := range sleepJobs {
		key := fmt.Sprintf("sleep-%d", i)
		sleepJobs[i] = engine.Job{Key: key, Spec: &engine.Spec{
			Task: "test/sleep", Args: map[string]string{"ms": "60000"},
		}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var cancelledResults []engine.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng := engine.New(engine.Options{Executor: pool})
		cancelledResults = eng.Run(ctx, sleepJobs)
	}()
	go func() {
		time.Sleep(300 * time.Millisecond) // let the sleepers occupy the workers
		cancel()
	}()
	wg.Wait()
	for _, r := range cancelledResults {
		if r.Err == nil {
			t.Errorf("%s completed despite cancellation", r.Key)
		}
	}

	// The healthy sweep runs after the cancellation killed the sleeping
	// children: the slots must respawn cleanly (the kill spent no crash
	// budget) and the output must not change a byte.
	got := renderSweep(t, engine.Options{Seed: 7, Executor: pool}, rowJobs(12))
	if got != want {
		t.Errorf("sweep after a concurrent cancellation diverged:\n%s\nwant:\n%s", got, want)
	}
	st := pool.Stats()
	if st.Remote != 12 {
		t.Errorf("stats = %+v, want the healthy sweep fully remote", st)
	}
}

// TestWorkStealing gives slot 0 a long-running first cell; the other
// worker must steal the rest of slot 0's queue instead of idling.
func TestWorkStealing(t *testing.T) {
	jobs := make([]engine.Job, 10)
	for i := range jobs {
		key := fmt.Sprintf("cell-%d", i)
		ms := "1"
		if i == 0 {
			ms = "1500" // pins slot 0 while its queue still holds cells 2,4,6,8
		}
		jobs[i] = engine.Job{Key: key, Spec: &engine.Spec{
			Task: "test/sleep", Args: map[string]string{"ms": ms},
		}}
	}
	pool := newTestPool(t, 2, io.Discard)
	eng := engine.New(engine.Options{Executor: pool})
	results := eng.Run(context.Background(), jobs)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Key, r.Err)
		}
	}
	if st := pool.Stats(); st.Steals < 1 {
		t.Errorf("steals = %d, want >= 1 (slot 1 should have drained slot 0's queue)", st.Steals)
	}
}

// TestSpecLessJobsRunLocally: jobs without a Spec execute in the
// dispatching process against the sweep catalog, not in workers.
func TestSpecLessJobsRunLocally(t *testing.T) {
	jobs := make([]engine.Job, 4)
	for i := range jobs {
		key := fmt.Sprintf("cell-%d", i)
		jobs[i] = engine.Job{Key: key, Run: func(ctx context.Context, env engine.Env) (interface{}, error) {
			return cellWork(env, key)
		}}
	}
	pool := newTestPool(t, 2, io.Discard)
	eng := engine.New(engine.Options{Executor: pool})
	for _, r := range eng.Run(context.Background(), jobs) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Key, r.Err)
		}
	}
	st := pool.Stats()
	if st.Local != 4 || st.Remote != 0 {
		t.Errorf("stats = %+v, want 4 local / 0 remote", st)
	}
}

// TestBrokenWorkerBinaryFallsBack: when the worker command cannot be
// spawned at all, every cell must still complete — in-process — so a
// sweep never wedges on a deployment problem.
func TestBrokenWorkerBinaryFallsBack(t *testing.T) {
	p, err := NewPool(Options{
		Workers: 2,
		Command: "/nonexistent/dsa-worker-binary",
		Stderr:  io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	eng := engine.New(engine.Options{Seed: 7, Executor: p})
	jobs := rowJobs(6)
	want := renderSweep(t, engine.Options{Parallel: 2, Seed: 7}, rowJobs(6))
	tb := &metrics.Table{Title: "dist", Header: []string{"key", "draw", "ratio", "time", "even", "shared"}}
	if _, err := eng.FillTable(context.Background(), tb, jobs); err != nil {
		t.Fatal(err)
	}
	if tb.String() != want {
		t.Errorf("fallback output diverged:\n%s\nwant:\n%s", tb.String(), want)
	}
	st := p.Stats()
	if st.Remote != 0 || st.Local != 6 {
		t.Errorf("stats = %+v, want all 6 cells local", st)
	}
}

// TestStderrPrefixNamesCell: whatever a worker writes to stderr while
// a cell is in flight arrives prefixed with the slot and cell key.
func TestStderrPrefixNamesCell(t *testing.T) {
	var buf syncBuffer
	jobs := []engine.Job{{Key: "noisy/cell", Spec: &engine.Spec{Task: "test/stderr"}}}
	pool := newTestPool(t, 1, &buf)
	eng := engine.New(engine.Options{Executor: pool})
	for _, r := range eng.Run(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Key, r.Err)
		}
	}
	pool.Close() // flush the child's stderr copier
	out := buf.String()
	for _, line := range []string{
		"worker[0] noisy/cell: grumble from noisy/cell",
		"worker[0] noisy/cell: second line",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("stderr missing %q; got:\n%s", line, out)
		}
	}
}

// TestCrashPartialLineFlushed: a worker that dies with an unterminated
// stderr line in flight must still get that line printed, prefixed
// with its slot and cell key — the last pre-crash log is evidence, not
// noise.
func TestCrashPartialLineFlushed(t *testing.T) {
	var buf syncBuffer
	jobs := []engine.Job{{Key: "doomed/cell", Spec: &engine.Spec{Task: "test/crash-midline"}}}
	pool := newTestPool(t, 1, &buf)
	eng := engine.New(engine.Options{Executor: pool})
	results := eng.Run(context.Background(), jobs)
	if !results[0].Panicked {
		t.Fatalf("crashed cell = %+v, want contained crash", results[0])
	}
	want := "worker[0] doomed/cell: dying words from doomed/cell\n"
	if out := buf.String(); !strings.Contains(out, want) {
		t.Errorf("stderr missing flushed partial line %q; got:\n%s", want, out)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for child stderr.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestPrefixWriter(t *testing.T) {
	var buf bytes.Buffer
	n := 0
	w := NewPrefixWriter(&buf, func() string { n++; return fmt.Sprintf("p%d: ", n) })
	io.WriteString(w, "one\ntwo\npartial")
	io.WriteString(w, " line\n")
	want := "p1: one\np2: two\np3: partial line\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
	buf.Reset()
	io.WriteString(Prefixed(&buf, "x: "), "a\nb\n")
	if buf.String() != "x: a\nx: b\n" {
		t.Errorf("Prefixed got %q", buf.String())
	}
}

// TestPrefixWriterFlushRecoversPartialLine pins the crash-path
// contract: Flush emits a buffered unterminated line with the prefix
// captured at its first byte, plus a closing newline; at a line
// boundary it is a no-op.
func TestPrefixWriterFlushRecoversPartialLine(t *testing.T) {
	var buf bytes.Buffer
	w := Prefixed(&buf, "w: ")
	io.WriteString(w, "done line\nlast gasp")
	if got, want := buf.String(), "w: done line\n"; got != want {
		t.Fatalf("before flush: %q, want %q (partial line held back)", got, want)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "w: done line\nw: last gasp\n"; got != want {
		t.Errorf("after flush: %q, want %q", got, want)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "w: done line\nw: last gasp\n" {
		t.Errorf("idle flush emitted bytes: %q", got)
	}
}

// TestPrefixWriterHardFlushTerminates: an oversized newline-less line
// is hard-flushed as a terminated, prefixed line, so a concurrent
// writer on the same destination can never glue onto it mid-line.
func TestPrefixWriterHardFlushTerminates(t *testing.T) {
	var buf bytes.Buffer
	w := Prefixed(&buf, "p: ")
	huge := strings.Repeat("x", maxBufferedLine+10)
	if _, err := io.WriteString(w, huge); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Errorf("hard-flushed chunk not newline-terminated (%d bytes, tail %q)", len(out), out[max(0, len(out)-5):])
	}
	if !strings.HasPrefix(out, "p: ") {
		t.Errorf("hard-flushed chunk lost its prefix: %q...", out[:10])
	}
	// The line's continuation starts a fresh prefixed line.
	io.WriteString(w, "tail")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if rest := buf.String()[len(out):]; rest != "p: tail\n" {
		t.Errorf("continuation chunk = %q, want a fresh prefixed line", rest)
	}
}

// TestPrefixWriterAtomicLines: two prefix writers interleaving partial
// writes onto one destination must still emit whole prefixed lines —
// the property that keeps N worker slots' stderr readable.
func TestPrefixWriterAtomicLines(t *testing.T) {
	var buf bytes.Buffer
	a := Prefixed(&buf, "a: ")
	b := Prefixed(&buf, "b: ")
	io.WriteString(a, "first half")
	io.WriteString(b, "other writer\n")
	io.WriteString(a, " second half\n")
	want := "b: other writer\na: first half second half\n"
	if buf.String() != want {
		t.Errorf("interleaved writes got %q, want %q", buf.String(), want)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := request{ID: 9, Seed: 77, Cells: []cellReq{
		{Index: 4, Key: "k", Spec: engine.Spec{
			Task: "t", Machine: "atlas", Workload: "loop@2a", Args: map[string]string{"refs": "100"},
		}},
		{Index: 7, Key: "k2", Spec: engine.Spec{Task: "t"}},
	}}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || len(out.Cells) != 2 || out.Cells[0].Key != "k" ||
		out.Cells[0].Spec.Machine != "atlas" || out.Cells[0].Spec.Args["refs"] != "100" ||
		out.Cells[1].Index != 7 {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
	// Clean EOF at a frame boundary.
	if err := readFrame(&buf, &out); err != io.EOF {
		t.Errorf("empty stream read = %v, want io.EOF", err)
	}
	// A truncated frame is not a clean EOF.
	buf.Reset()
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if err := readFrame(trunc, &out); err == nil || err == io.EOF {
		t.Errorf("truncated frame read = %v, want a hard error", err)
	}
}

// TestPersistentCodecStream pins the v2 stream behaviour: one
// encoder/decoder pair carries many frames, gob type definitions cross
// the wire only once (so every frame after the first is much smaller),
// payloads survive intact, and the stream still ends in a clean EOF.
func TestPersistentCodecStream(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	const frames = 16
	sizes := make([]int, frames)
	for i := 0; i < frames; i++ {
		before := buf.Len()
		in := request{ID: uint64(i), Seed: 5, Cells: []cellReq{
			{Index: i, Key: fmt.Sprintf("cell-%d", i), Spec: engine.Spec{Task: "t", Args: map[string]string{"n": "1"}}},
		}}
		if err := fw.writeFrame(&in); err != nil {
			t.Fatal(err)
		}
		sizes[i] = buf.Len() - before
	}
	if sizes[1] >= sizes[0] {
		t.Errorf("second frame is %d bytes, first %d: type definitions were re-sent", sizes[1], sizes[0])
	}
	fr := newFrameReader(&buf)
	for i := 0; i < frames; i++ {
		var out request
		if err := fr.readFrame(&out); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if out.ID != uint64(i) || len(out.Cells) != 1 || out.Cells[0].Key != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("frame %d decoded as %+v", i, out)
		}
	}
	var out request
	if err := fr.readFrame(&out); err != io.EOF {
		t.Errorf("drained stream read = %v, want io.EOF", err)
	}
}

// TestPersistentCodecCorruptionDetected flips one payload bit in the
// middle of a persistent stream: the checksum must fail that frame
// before any corrupt byte reaches the decoder.
func TestPersistentCodecCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := fw.writeFrame(&request{ID: uint64(i), Cells: []cellReq{{Key: "k"}}}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	raw[len(raw)-2] ^= 0x01 // corrupt the final frame's payload
	fr := newFrameReader(bytes.NewReader(raw))
	var out request
	for i := 0; i < 2; i++ {
		if err := fr.readFrame(&out); err != nil {
			t.Fatalf("clean frame %d: %v", i, err)
		}
	}
	if err := fr.readFrame(&out); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("corrupt frame read = %v, want a checksum mismatch", err)
	}
}

func TestQueuesStealFromLongest(t *testing.T) {
	qs := newQueues(3, 9) // slot queues: [0 3 6] [1 4 7] [2 5 8]
	// Drain slot 0's own queue one at a time.
	for _, want := range []int{0, 3, 6} {
		idxs, stolen, ok := qs.nextBatch(0, 1)
		if !ok || stolen != 0 || len(idxs) != 1 || idxs[0] != want {
			t.Fatalf("own pop = (%v,%d,%v), want ([%d],0,true)", idxs, stolen, ok, want)
		}
	}
	// Next pop steals the tail of the longest remaining queue (slot 1).
	idxs, stolen, ok := qs.nextBatch(0, 1)
	if !ok || stolen != 1 || len(idxs) != 1 || idxs[0] != 7 {
		t.Fatalf("steal = (%v,%d,%v), want ([7],1,true)", idxs, stolen, ok)
	}
	// Exhaust everything; every index must be handed out exactly once.
	seen := map[int]bool{0: true, 3: true, 6: true, 7: true}
	for {
		idxs, _, ok := qs.nextBatch(2, 1)
		if !ok {
			break
		}
		if seen[idxs[0]] {
			t.Fatalf("index %d handed out twice", idxs[0])
		}
		seen[idxs[0]] = true
	}
	if len(seen) != 9 {
		t.Errorf("handed out %d of 9 indices", len(seen))
	}
}

func TestQueuesBatchedPopsAndSteals(t *testing.T) {
	qs := newQueues(2, 10) // [0 2 4 6 8] [1 3 5 7 9]
	// A batch pop takes a prefix of the slot's own queue.
	idxs, stolen, ok := qs.nextBatch(0, 3)
	if !ok || stolen != 0 || fmt.Sprint(idxs) != "[0 2 4]" {
		t.Fatalf("batch pop = (%v,%d,%v), want ([0 2 4],0,true)", idxs, stolen, ok)
	}
	// A short remainder ships as a partial batch rather than waiting.
	idxs, stolen, ok = qs.nextBatch(0, 3)
	if !ok || stolen != 0 || fmt.Sprint(idxs) != "[6 8]" {
		t.Fatalf("partial pop = (%v,%d,%v), want ([6 8],0,true)", idxs, stolen, ok)
	}
	// Empty own queue: steal a whole batch from the victim's tail.
	idxs, stolen, ok = qs.nextBatch(0, 2)
	if !ok || stolen != 2 || fmt.Sprint(idxs) != "[7 9]" {
		t.Fatalf("batch steal = (%v,%d,%v), want ([7 9],2,true)", idxs, stolen, ok)
	}
	// Everything else drains through the owner.
	count := 0
	for {
		idxs, _, ok := qs.nextBatch(1, 8)
		if !ok {
			break
		}
		count += len(idxs)
	}
	if count != 3 {
		t.Errorf("owner drained %d cells, want the remaining 3", count)
	}
}
