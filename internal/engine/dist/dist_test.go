package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dsa/internal/engine"
	"dsa/internal/metrics"
	"dsa/internal/sim"
	"dsa/internal/workload/catalog"
)

// workerEnv marks a re-execution of this test binary as a dist worker.
const workerEnv = "DSA_DIST_TEST_WORKER"

func TestMain(m *testing.M) {
	registerTestHandlers()
	if os.Getenv(workerEnv) == "1" {
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// cellWork is the shared cell implementation: the same function backs
// the in-process Job.Run and the remote handler, so local and
// distributed execution are byte-identical by construction.
func cellWork(env engine.Env, key string) (interface{}, error) {
	shared, err := catalog.Get(env.Catalog, "test/shared", func() (uint64, error) {
		return 40 + 2, nil
	})
	if err != nil {
		return nil, err
	}
	draw := env.RNG.Uint64() % 100000
	return engine.RowBatch{{key, int(draw), float64(draw) / 7, sim.Time(draw), draw%2 == 0, shared}}, nil
}

func registerTestHandlers() {
	Handle("test/rows", func(ctx context.Context, c Call) (interface{}, error) {
		return cellWork(c.Env, c.Key)
	})
	Handle("test/crash", func(ctx context.Context, c Call) (interface{}, error) {
		os.Exit(3)
		return nil, nil
	})
	Handle("test/panic", func(ctx context.Context, c Call) (interface{}, error) {
		panic("remote boom")
	})
	Handle("test/error", func(ctx context.Context, c Call) (interface{}, error) {
		return nil, fmt.Errorf("deliberate failure in %s", c.Key)
	})
	Handle("test/sleep", func(ctx context.Context, c Call) (interface{}, error) {
		ms, _ := strconv.Atoi(c.Spec.Args["ms"])
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return c.Key, nil
	})
	Handle("test/stderr", func(ctx context.Context, c Call) (interface{}, error) {
		fmt.Fprintf(os.Stderr, "grumble from %s\nsecond line\n", c.Key)
		return c.Key, nil
	})
}

// newTestPool builds a pool of this test binary in worker mode.
func newTestPool(t *testing.T, workers int, stderr io.Writer) *Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(Options{
		Workers: workers,
		Command: exe,
		Env:     append(os.Environ(), workerEnv+"=1"),
		Stderr:  stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// rowJobs builds n cells that run cellWork locally and carry specs for
// the test/rows handler remotely.
func rowJobs(n int) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		key := fmt.Sprintf("cell-%02d", i)
		jobs[i] = engine.Job{
			Key:  key,
			Spec: &engine.Spec{Task: "test/rows"},
			Run: func(ctx context.Context, env engine.Env) (interface{}, error) {
				return cellWork(env, key)
			},
		}
	}
	return jobs
}

// renderSweep runs jobs through an engine into a table.
func renderSweep(t *testing.T, opts engine.Options, jobs []engine.Job) string {
	t.Helper()
	tb := &metrics.Table{Title: "dist", Header: []string{"key", "draw", "ratio", "time", "even", "shared"}}
	eng := engine.New(opts)
	if _, err := eng.FillTable(context.Background(), tb, jobs); err != nil {
		t.Fatal(err)
	}
	return tb.String()
}

// TestDistMatchesInProcess is the core contract: a sweep through two
// worker processes renders byte-identically to the in-process pool,
// including named types (sim.Time) round-tripped through gob.
func TestDistMatchesInProcess(t *testing.T) {
	local := renderSweep(t, engine.Options{Parallel: 2, Seed: 7}, rowJobs(12))

	pool := newTestPool(t, 2, io.Discard)
	dist := renderSweep(t, engine.Options{Seed: 7, Executor: pool}, rowJobs(12))

	if local != dist {
		t.Errorf("distributed output diverged from in-process:\nlocal:\n%s\ndist:\n%s", local, dist)
	}
	st := pool.Stats()
	if st.Remote != 12 || st.Local != 0 {
		t.Errorf("stats = %+v, want 12 remote cells", st)
	}
}

// TestWorkerCrashContained kills a worker mid-cell (os.Exit in the
// handler) and requires the crashed cell to surface as a contained
// FAILED cell while the rest of the sweep completes remotely on a
// respawned worker. One slot, so the respawn is the only way the
// remaining cells can stay remote.
func TestWorkerCrashContained(t *testing.T) {
	jobs := rowJobs(8)
	jobs[3] = engine.Job{Key: "cell-03", Spec: &engine.Spec{Task: "test/crash"}}

	pool := newTestPool(t, 1, io.Discard)
	eng := engine.New(engine.Options{Seed: 1, Executor: pool})
	results := eng.Run(context.Background(), jobs)

	for _, r := range results {
		if r.Key == "cell-03" {
			if !r.Panicked {
				t.Fatalf("crashed cell result = %+v, want contained panic", r)
			}
			pe, ok := r.Err.(*engine.PanicError)
			if !ok || !strings.Contains(pe.Error(), "crashed") {
				t.Errorf("crashed cell error = %v, want worker-crash PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: unexpected error %v", r.Key, r.Err)
		}
	}
	st := pool.Stats()
	if st.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", st.Crashes)
	}
	if st.Respawns < 1 {
		t.Errorf("respawns = %d, want >= 1 (slot must recover)", st.Respawns)
	}
	if st.Remote != 7 {
		t.Errorf("remote = %d, want 7 (every healthy cell stays distributed)", st.Remote)
	}
}

// TestRemotePanicMatchesLocalContainment: a panic inside a worker must
// render the same FAILED row an in-process contained panic renders.
func TestRemotePanicMatchesLocalContainment(t *testing.T) {
	mkJobs := func() []engine.Job {
		jobs := rowJobs(3)
		jobs[1] = engine.Job{
			Key:  "cell-01",
			Spec: &engine.Spec{Task: "test/panic"},
			Run: func(ctx context.Context, env engine.Env) (interface{}, error) {
				panic("remote boom")
			},
		}
		return jobs
	}
	local := renderSweep(t, engine.Options{Parallel: 2, Seed: 3}, mkJobs())
	pool := newTestPool(t, 2, io.Discard)
	dist := renderSweep(t, engine.Options{Seed: 3, Executor: pool}, mkJobs())
	if local != dist {
		t.Errorf("contained panic rendered differently:\nlocal:\n%s\ndist:\n%s", local, dist)
	}
	if !strings.Contains(dist, "FAILED: remote boom") {
		t.Errorf("FAILED row missing panic value:\n%s", dist)
	}
}

// TestRemoteErrorStaysOrdinary: a handler error must come back as an
// ordinary error (aborting FillTable), not a contained panic.
func TestRemoteErrorStaysOrdinary(t *testing.T) {
	jobs := rowJobs(3)
	jobs[2] = engine.Job{Key: "cell-02", Spec: &engine.Spec{Task: "test/error"}}
	pool := newTestPool(t, 2, io.Discard)
	eng := engine.New(engine.Options{Executor: pool})
	tb := &metrics.Table{Header: []string{"k", "v", "r", "t", "e", "s"}}
	_, err := eng.FillTable(context.Background(), tb, jobs)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure in cell-02") {
		t.Errorf("FillTable error = %v, want the remote cell's error", err)
	}
}

// TestCancellationKillsChildren cancels a sweep whose first cells
// sleep far longer than the test budget; the pool must kill the
// children and report every unfinished cell with the context error.
func TestCancellationKillsChildren(t *testing.T) {
	jobs := make([]engine.Job, 6)
	for i := range jobs {
		key := fmt.Sprintf("sleep-%d", i)
		jobs[i] = engine.Job{Key: key, Spec: &engine.Spec{
			Task: "test/sleep", Args: map[string]string{"ms": "60000"},
		}}
	}
	pool := newTestPool(t, 2, io.Discard)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond) // let the workers start their cells
		cancel()
	}()
	start := time.Now()
	eng := engine.New(engine.Options{Executor: pool})
	results := eng.Run(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; children were not killed", elapsed)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s completed despite cancellation", r.Key)
		}
	}
}

// TestWorkStealing gives slot 0 a long-running first cell; the other
// worker must steal the rest of slot 0's queue instead of idling.
func TestWorkStealing(t *testing.T) {
	jobs := make([]engine.Job, 10)
	for i := range jobs {
		key := fmt.Sprintf("cell-%d", i)
		ms := "1"
		if i == 0 {
			ms = "1500" // pins slot 0 while its queue still holds cells 2,4,6,8
		}
		jobs[i] = engine.Job{Key: key, Spec: &engine.Spec{
			Task: "test/sleep", Args: map[string]string{"ms": ms},
		}}
	}
	pool := newTestPool(t, 2, io.Discard)
	eng := engine.New(engine.Options{Executor: pool})
	results := eng.Run(context.Background(), jobs)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Key, r.Err)
		}
	}
	if st := pool.Stats(); st.Steals < 1 {
		t.Errorf("steals = %d, want >= 1 (slot 1 should have drained slot 0's queue)", st.Steals)
	}
}

// TestSpecLessJobsRunLocally: jobs without a Spec execute in the
// dispatching process against the sweep catalog, not in workers.
func TestSpecLessJobsRunLocally(t *testing.T) {
	jobs := make([]engine.Job, 4)
	for i := range jobs {
		key := fmt.Sprintf("cell-%d", i)
		jobs[i] = engine.Job{Key: key, Run: func(ctx context.Context, env engine.Env) (interface{}, error) {
			return cellWork(env, key)
		}}
	}
	pool := newTestPool(t, 2, io.Discard)
	eng := engine.New(engine.Options{Executor: pool})
	for _, r := range eng.Run(context.Background(), jobs) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Key, r.Err)
		}
	}
	st := pool.Stats()
	if st.Local != 4 || st.Remote != 0 {
		t.Errorf("stats = %+v, want 4 local / 0 remote", st)
	}
}

// TestBrokenWorkerBinaryFallsBack: when the worker command cannot be
// spawned at all, every cell must still complete — in-process — so a
// sweep never wedges on a deployment problem.
func TestBrokenWorkerBinaryFallsBack(t *testing.T) {
	p, err := NewPool(Options{
		Workers: 2,
		Command: "/nonexistent/dsa-worker-binary",
		Stderr:  io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	eng := engine.New(engine.Options{Seed: 7, Executor: p})
	jobs := rowJobs(6)
	want := renderSweep(t, engine.Options{Parallel: 2, Seed: 7}, rowJobs(6))
	tb := &metrics.Table{Title: "dist", Header: []string{"key", "draw", "ratio", "time", "even", "shared"}}
	if _, err := eng.FillTable(context.Background(), tb, jobs); err != nil {
		t.Fatal(err)
	}
	if tb.String() != want {
		t.Errorf("fallback output diverged:\n%s\nwant:\n%s", tb.String(), want)
	}
	st := p.Stats()
	if st.Remote != 0 || st.Local != 6 {
		t.Errorf("stats = %+v, want all 6 cells local", st)
	}
}

// TestStderrPrefixNamesCell: whatever a worker writes to stderr while
// a cell is in flight arrives prefixed with the slot and cell key.
func TestStderrPrefixNamesCell(t *testing.T) {
	var buf syncBuffer
	jobs := []engine.Job{{Key: "noisy/cell", Spec: &engine.Spec{Task: "test/stderr"}}}
	pool := newTestPool(t, 1, &buf)
	eng := engine.New(engine.Options{Executor: pool})
	for _, r := range eng.Run(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Key, r.Err)
		}
	}
	pool.Close() // flush the child's stderr copier
	out := buf.String()
	for _, line := range []string{
		"worker[0] noisy/cell: grumble from noisy/cell",
		"worker[0] noisy/cell: second line",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("stderr missing %q; got:\n%s", line, out)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for child stderr.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestPrefixWriter(t *testing.T) {
	var buf bytes.Buffer
	n := 0
	w := NewPrefixWriter(&buf, func() string { n++; return fmt.Sprintf("p%d: ", n) })
	io.WriteString(w, "one\ntwo\npartial")
	io.WriteString(w, " line\n")
	want := "p1: one\np2: two\np3: partial line\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
	buf.Reset()
	io.WriteString(Prefixed(&buf, "x: "), "a\nb\n")
	if buf.String() != "x: a\nx: b\n" {
		t.Errorf("Prefixed got %q", buf.String())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := request{ID: 9, Index: 4, Key: "k", Seed: 77, Spec: engine.Spec{
		Task: "t", Machine: "atlas", Workload: "loop@2a", Args: map[string]string{"refs": "100"},
	}}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Key != in.Key || out.Spec.Machine != "atlas" || out.Spec.Args["refs"] != "100" {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
	// Clean EOF at a frame boundary.
	if err := readFrame(&buf, &out); err != io.EOF {
		t.Errorf("empty stream read = %v, want io.EOF", err)
	}
	// A truncated frame is not a clean EOF.
	buf.Reset()
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if err := readFrame(trunc, &out); err == nil || err == io.EOF {
		t.Errorf("truncated frame read = %v, want a hard error", err)
	}
}

func TestQueuesStealFromLongest(t *testing.T) {
	qs := newQueues(3, 9) // slot queues: [0 3 6] [1 4 7] [2 5 8]
	// Drain slot 0's own queue.
	for _, want := range []int{0, 3, 6} {
		idx, stolen, ok := qs.next(0)
		if !ok || stolen || idx != want {
			t.Fatalf("own pop = (%d,%v,%v), want (%d,false,true)", idx, stolen, ok, want)
		}
	}
	// Next pop steals the tail of the longest remaining queue (slot 1).
	idx, stolen, ok := qs.next(0)
	if !ok || !stolen || idx != 7 {
		t.Fatalf("steal = (%d,%v,%v), want (7,true,true)", idx, stolen, ok)
	}
	// Exhaust everything; every index must be handed out exactly once.
	seen := map[int]bool{0: true, 3: true, 6: true, 7: true}
	for {
		idx, _, ok := qs.next(2)
		if !ok {
			break
		}
		if seen[idx] {
			t.Fatalf("index %d handed out twice", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 9 {
		t.Errorf("handed out %d of 9 indices", len(seen))
	}
}
