package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"testing"

	"dsa/internal/engine"
)

// newBenchPool builds a pool of this test binary in worker mode for
// benchmarks (the TestMain worker hook serves both).
func newBenchPool(b *testing.B, workers, batch int) *Pool {
	b.Helper()
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPool(Options{
		Workers: workers,
		Batch:   batch,
		Command: exe,
		Env:     append(os.Environ(), workerEnv+"=1"),
		Stderr:  io.Discard,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	return p
}

// BenchmarkDistRoundTrips measures the per-frame protocol overhead on
// a sweep of small cells — the workload shape batching exists for. At
// batch=1 every cell pays a full gob+pipe round trip; at batch=8 eight
// cells share one. The workers persist across iterations (as they do
// across sweeps in production), so this isolates round-trip cost from
// spawn cost.
func BenchmarkDistRoundTrips(b *testing.B) {
	const cells = 64
	for _, batch := range []int{1, 8} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			pool := newBenchPool(b, 2, batch)
			eng := engine.New(engine.Options{Seed: 7, Executor: pool})
			jobs := rowJobs(cells)
			// Warm the workers once so spawn cost stays off the clock.
			for _, r := range eng.Run(context.Background(), jobs) {
				if r.Err != nil {
					b.Fatalf("%s: %v", r.Key, r.Err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Run(context.Background(), jobs)
			}
			b.StopTimer()
			if st := pool.Stats(); st.Crashes != 0 || st.Local != 0 {
				b.Fatalf("stats = %+v, want clean remote execution", st)
			}
		})
	}
}
