package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"dsa/internal/engine"
	"dsa/internal/sim"
	"dsa/internal/workload/catalog"
)

// Call carries one cell invocation into a registered handler: the
// cell's key and the sweep's base seed (together they derive the
// cell's RNG), the wire spec naming the cell, and an engine.Env whose
// catalog is the worker process's own — shared across every cell this
// worker runs, so workloads materialize once per process no matter how
// many cells declare them.
type Call struct {
	Key  string
	Seed uint64
	Spec engine.Spec
	Env  engine.Env
}

// Handler runs one cell in a worker process. The returned value must
// be gob-serializable (see RegisterValue) and byte-for-byte what the
// corresponding in-process Job.Run would have produced — handlers and
// local closures should share one implementation.
type Handler func(ctx context.Context, c Call) (interface{}, error)

var (
	regMu    sync.RWMutex
	handlers = map[string]Handler{}
)

// Handle registers the handler a worker runs for cells whose Spec.Task
// equals task. It panics on an empty task or a duplicate registration:
// the registry is compiled-in configuration, not runtime state.
func Handle(task string, h Handler) {
	if task == "" || h == nil {
		panic("dist: Handle requires a task name and a handler")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := handlers[task]; dup {
		panic(fmt.Sprintf("dist: task %q registered twice", task))
	}
	handlers[task] = h
}

// lookupHandler returns the registered handler, nil if absent.
func lookupHandler(task string) Handler {
	regMu.RLock()
	defer regMu.RUnlock()
	return handlers[task]
}

// Tasks returns the sorted registered task names (diagnostics).
func Tasks() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(handlers))
	for t := range handlers {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DefaultHeartbeat is how often a worker proves its link alive while a
// batch executes. Dispatcher-side link deadlines must be comfortably
// larger (DefaultLinkTimeout is 20× this), so a link is only declared
// dead after many consecutive missed beats, never by one slow frame.
const DefaultHeartbeat = 500 * time.Millisecond

// WorkerOptions configures the worker side of the protocol.
type WorkerOptions struct {
	// Catalog is the worker's per-process workload catalog, shared
	// across every cell and sweep this worker serves. Nil means a fresh
	// in-memory catalog; the CLIs pass a disk-backed store here when
	// spawned with -cache-dir, so workers replay workloads across
	// processes and runs.
	Catalog *catalog.Catalog
	// HeartbeatInterval is how often the worker emits heartbeat frames
	// while a batch is executing — the application-level liveness
	// signal that lets the dispatcher distinguish a slow cell (beats
	// keep arriving) from a dead link (silence). <= 0 means
	// DefaultHeartbeat. Heartbeats are consumed by the dispatcher's
	// transport and never change output bytes.
	HeartbeatInterval time.Duration
}

// WorkerMain is ServeWorker with default options — the historical
// entry point for a `<cmd> worker` subcommand without flags.
func WorkerMain(in io.Reader, out io.Writer) error {
	return ServeWorker(in, out, WorkerOptions{})
}

// ServeWorker is the stdio worker side of the protocol: the `<cmd>
// worker` subcommand calls it with the process's stdin and stdout. It
// serves request batches one frame at a time — parallelism comes from
// the dispatcher running N workers — until stdin closes (a clean
// shutdown, returning nil) or the protocol breaks. Cells run under the
// engine's standard contract: RNG seeded via sim.SeedFor(seed, key)
// and per-cell panic containment, with the recovered panic shipped
// back for the dispatcher to surface exactly as an in-process
// contained panic (the rest of the batch still runs). The TCP
// counterpart is Serve, which runs the same loop per accepted
// connection after a handshake.
func ServeWorker(in io.Reader, out io.Writer, o WorkerOptions) error {
	return serveConn(context.Background(), in, out, o)
}

// serveConn is the worker protocol loop shared by the stdio and TCP
// transports: read a request frame, run its batch, answer with a
// response frame — emitting heartbeat frames on a ticker while the
// batch executes, so the dispatcher's link deadline measures silence,
// not cell cost. ctx scopes the connection: when a heartbeat write
// fails (the link is gone and nothing this batch computes can be
// delivered) the in-flight batch's context is cancelled and the loop
// returns without waiting on cells that ignore cancellation — a
// serve-worker must not let one dead dialer pin a goroutine forever.
func serveConn(ctx context.Context, in io.Reader, out io.Writer, o WorkerOptions) error {
	r, ok := in.(*bufio.Reader)
	if !ok {
		r = bufio.NewReader(in)
	}
	w, ok := out.(*bufio.Writer)
	if !ok {
		w = bufio.NewWriter(out)
	}
	cat := o.Catalog
	if cat == nil {
		cat = catalog.New() // per-process workload catalog, shared across cells
	}
	hb := o.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	// Persistent per-connection codecs: the encoder ships each wire
	// type's definition once, and the decoder mirrors the dispatcher's
	// persistent encoder. The write mutex also serializes access to the
	// shared encoder: heartbeats come from a ticker racing the batch's
	// own response, and a frame torn between the two would
	// desynchronize the stream.
	fw := newFrameWriter(w)
	fr := newFrameReader(r)
	var wmu sync.Mutex
	send := func(v interface{}) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := fw.writeFrame(v); err != nil {
			return err
		}
		return w.Flush()
	}
	for {
		var req request
		if err := fr.readFrame(&req); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		batchCtx, cancel := context.WithCancel(ctx)
		done := make(chan *response, 1) // buffered: the batch goroutine never blocks on a departed reader
		go func() { done <- serve(batchCtx, &req, cat) }()
		ticker := time.NewTicker(hb)
		var resp *response
		var linkErr error
		for resp == nil && linkErr == nil {
			select {
			case resp = <-done:
			case <-ticker.C:
				if err := send(&response{ID: req.ID, Heartbeat: true}); err != nil {
					linkErr = err
					cancel() // the dialer is gone: tell the batch to stop
				}
			}
		}
		ticker.Stop()
		cancel()
		if linkErr != nil {
			return linkErr
		}
		if err := send(resp); err != nil {
			return err
		}
	}
}

// serve runs one request batch, cell by cell in order. ctx is the
// connection's context: cancelled when the link that asked for this
// batch has died, so well-behaved handlers can stop early.
func serve(ctx context.Context, req *request, cat *catalog.Catalog) *response {
	resp := &response{ID: req.ID, Results: make([]cellResp, len(req.Cells))}
	for i := range req.Cells {
		serveCell(ctx, &req.Cells[i], req.Seed, cat, &resp.Results[i])
	}
	return resp
}

// serveCell runs one cell with panic containment.
func serveCell(ctx context.Context, c *cellReq, seed uint64, cat *catalog.Catalog, out *cellResp) {
	out.Key = c.Key
	h := lookupHandler(c.Spec.Task)
	if h == nil {
		out.Err = fmt.Sprintf("dist: worker has no handler for task %q (registered: %v)", c.Spec.Task, Tasks())
		return
	}
	defer func() {
		if p := recover(); p != nil {
			stack := make([]byte, 8192)
			stack = stack[:runtime.Stack(stack, false)]
			out.Value = nil
			out.Err = ""
			out.Panicked = true
			out.PanicVal = fmt.Sprint(p)
			out.Stack = stack
		}
	}()
	env := engine.Env{RNG: sim.NewRNG(sim.SeedFor(seed, c.Key)), Catalog: cat}
	v, err := h(ctx, Call{Key: c.Key, Seed: seed, Spec: c.Spec, Env: env})
	if err != nil {
		out.Err = err.Error()
		return
	}
	out.Value = v
}
