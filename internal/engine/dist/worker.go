package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"dsa/internal/engine"
	"dsa/internal/sim"
	"dsa/internal/workload/catalog"
)

// Call carries one cell invocation into a registered handler: the
// cell's key and the sweep's base seed (together they derive the
// cell's RNG), the wire spec naming the cell, and an engine.Env whose
// catalog is the worker process's own — shared across every cell this
// worker runs, so workloads materialize once per process no matter how
// many cells declare them.
type Call struct {
	Key  string
	Seed uint64
	Spec engine.Spec
	Env  engine.Env
}

// Handler runs one cell in a worker process. The returned value must
// be gob-serializable (see RegisterValue) and byte-for-byte what the
// corresponding in-process Job.Run would have produced — handlers and
// local closures should share one implementation.
type Handler func(ctx context.Context, c Call) (interface{}, error)

var (
	regMu    sync.RWMutex
	handlers = map[string]Handler{}
)

// Handle registers the handler a worker runs for cells whose Spec.Task
// equals task. It panics on an empty task or a duplicate registration:
// the registry is compiled-in configuration, not runtime state.
func Handle(task string, h Handler) {
	if task == "" || h == nil {
		panic("dist: Handle requires a task name and a handler")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := handlers[task]; dup {
		panic(fmt.Sprintf("dist: task %q registered twice", task))
	}
	handlers[task] = h
}

// lookupHandler returns the registered handler, nil if absent.
func lookupHandler(task string) Handler {
	regMu.RLock()
	defer regMu.RUnlock()
	return handlers[task]
}

// Tasks returns the sorted registered task names (diagnostics).
func Tasks() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(handlers))
	for t := range handlers {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// WorkerOptions configures the worker side of the protocol.
type WorkerOptions struct {
	// Catalog is the worker's per-process workload catalog, shared
	// across every cell and sweep this worker serves. Nil means a fresh
	// in-memory catalog; the CLIs pass a disk-backed store here when
	// spawned with -cache-dir, so workers replay workloads across
	// processes and runs.
	Catalog *catalog.Catalog
}

// WorkerMain is ServeWorker with default options — the historical
// entry point for a `<cmd> worker` subcommand without flags.
func WorkerMain(in io.Reader, out io.Writer) error {
	return ServeWorker(in, out, WorkerOptions{})
}

// ServeWorker is the worker side of the protocol: the `<cmd> worker`
// subcommand calls it with the process's stdin and stdout. It serves
// request batches one frame at a time — parallelism comes from the
// dispatcher running N workers — until stdin closes (a clean shutdown,
// returning nil) or the protocol breaks. Cells run under the engine's
// standard contract: RNG seeded via sim.SeedFor(seed, key) and
// per-cell panic containment, with the recovered panic shipped back
// for the dispatcher to surface exactly as an in-process contained
// panic (the rest of the batch still runs).
func ServeWorker(in io.Reader, out io.Writer, o WorkerOptions) error {
	r := bufio.NewReader(in)
	w := bufio.NewWriter(out)
	cat := o.Catalog
	if cat == nil {
		cat = catalog.New() // per-process workload catalog, shared across cells
	}
	for {
		var req request
		if err := readFrame(r, &req); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		resp := serve(&req, cat)
		if err := writeFrame(w, resp); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// serve runs one request batch, cell by cell in order.
func serve(req *request, cat *catalog.Catalog) *response {
	resp := &response{ID: req.ID, Results: make([]cellResp, len(req.Cells))}
	for i := range req.Cells {
		serveCell(&req.Cells[i], req.Seed, cat, &resp.Results[i])
	}
	return resp
}

// serveCell runs one cell with panic containment.
func serveCell(c *cellReq, seed uint64, cat *catalog.Catalog, out *cellResp) {
	out.Key = c.Key
	h := lookupHandler(c.Spec.Task)
	if h == nil {
		out.Err = fmt.Sprintf("dist: worker has no handler for task %q (registered: %v)", c.Spec.Task, Tasks())
		return
	}
	defer func() {
		if p := recover(); p != nil {
			stack := make([]byte, 8192)
			stack = stack[:runtime.Stack(stack, false)]
			out.Value = nil
			out.Err = ""
			out.Panicked = true
			out.PanicVal = fmt.Sprint(p)
			out.Stack = stack
		}
	}()
	env := engine.Env{RNG: sim.NewRNG(sim.SeedFor(seed, c.Key)), Catalog: cat}
	v, err := h(context.Background(), Call{Key: c.Key, Seed: seed, Spec: c.Spec, Env: env})
	if err != nil {
		out.Err = err.Error()
		return
	}
	out.Value = v
}
