package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"dsa/internal/engine"
	"dsa/internal/sim"
	"dsa/internal/workload/catalog"
)

// Call carries one cell invocation into a registered handler: the
// cell's key and the sweep's base seed (together they derive the
// cell's RNG), the wire spec naming the cell, and an engine.Env whose
// catalog is the worker process's own — shared across every cell this
// worker runs, so workloads materialize once per process no matter how
// many cells declare them.
type Call struct {
	Key  string
	Seed uint64
	Spec engine.Spec
	Env  engine.Env
}

// Handler runs one cell in a worker process. The returned value must
// be gob-serializable (see RegisterValue) and byte-for-byte what the
// corresponding in-process Job.Run would have produced — handlers and
// local closures should share one implementation.
type Handler func(ctx context.Context, c Call) (interface{}, error)

var (
	regMu    sync.RWMutex
	handlers = map[string]Handler{}
)

// Handle registers the handler a worker runs for cells whose Spec.Task
// equals task. It panics on an empty task or a duplicate registration:
// the registry is compiled-in configuration, not runtime state.
func Handle(task string, h Handler) {
	if task == "" || h == nil {
		panic("dist: Handle requires a task name and a handler")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := handlers[task]; dup {
		panic(fmt.Sprintf("dist: task %q registered twice", task))
	}
	handlers[task] = h
}

// lookupHandler returns the registered handler, nil if absent.
func lookupHandler(task string) Handler {
	regMu.RLock()
	defer regMu.RUnlock()
	return handlers[task]
}

// Tasks returns the sorted registered task names (diagnostics).
func Tasks() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(handlers))
	for t := range handlers {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// WorkerMain is the worker side of the protocol: the `<cmd> worker`
// subcommand calls it with the process's stdin and stdout. It serves
// requests one at a time — parallelism comes from the dispatcher
// running N workers — until stdin closes (a clean shutdown, returning
// nil) or the protocol breaks. Cells run under the engine's standard
// contract: RNG seeded via sim.SeedFor(seed, key) and panic
// containment, with the recovered panic shipped back for the
// dispatcher to surface exactly as an in-process contained panic.
func WorkerMain(in io.Reader, out io.Writer) error {
	r := bufio.NewReader(in)
	w := bufio.NewWriter(out)
	cat := catalog.New() // per-process workload catalog, shared across cells
	for {
		var req request
		if err := readFrame(r, &req); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		resp := serve(&req, cat)
		if err := writeFrame(w, resp); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// serve runs one request with panic containment.
func serve(req *request, cat *catalog.Catalog) (resp *response) {
	resp = &response{ID: req.ID, Key: req.Key}
	h := lookupHandler(req.Spec.Task)
	if h == nil {
		resp.Err = fmt.Sprintf("dist: worker has no handler for task %q (registered: %v)", req.Spec.Task, Tasks())
		return resp
	}
	defer func() {
		if p := recover(); p != nil {
			stack := make([]byte, 8192)
			stack = stack[:runtime.Stack(stack, false)]
			resp.Value = nil
			resp.Err = ""
			resp.Panicked = true
			resp.PanicVal = fmt.Sprint(p)
			resp.Stack = stack
		}
	}()
	env := engine.Env{RNG: sim.NewRNG(sim.SeedFor(req.Seed, req.Key)), Catalog: cat}
	v, err := h(context.Background(), Call{Key: req.Key, Seed: req.Seed, Spec: req.Spec, Env: env})
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Value = v
	return resp
}
