// Package dist distributes engine sweeps across worker processes: a
// dispatcher (Pool) that implements engine.Executor by sharding cells
// over a pool of workers, and the worker side (ServeWorker for child
// processes over stdio, Serve for remote serve-worker processes over
// TCP), speaking a length-prefixed, checksummed gob protocol over
// either byte stream.
//
// A cell crosses the process boundary as its engine.Spec — a task name
// resolved against the worker's compiled-in handler registry plus the
// sweep's base seed and the cell key. Cells travel in batches of
// Options.Batch per frame, amortizing the gob+pipe round trip across
// small cells; the worker runs each batch cell by cell, in order. The
// worker re-derives each cell's RNG exactly as the in-process pool
// does (sim.SeedFor(seed, key)) and materializes workloads from its
// own workload catalog by key — optionally a disk-backed store shared
// with the dispatcher and the other workers — so the immutable catalog
// is the wire boundary: no workload data is ever serialized, only the
// keys that deterministically regenerate it. Output is therefore
// byte-identical to an in-process run at any worker count and any
// batch size.
//
// The engine's fault-containment posture extends across the process
// boundary: a worker that crashes (or is killed) surfaces as a
// contained failure — a FAILED cell — for whatever cell it had in
// flight, the child is respawned within a bounded budget, and the
// sweep completes. A slot whose budget is exhausted (or whose binary
// cannot be spawned at all) degrades to running its cells in the
// dispatching process, so a sweep never wedges and never loses cells.
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"dsa/internal/engine"
	"dsa/internal/sim"
)

// maxFrame bounds a single protocol frame. Cells return row batches
// and report strings, not bulk data; anything larger than this is a
// protocol error, not a workload.
const maxFrame = 64 << 20

// protoVersion is negotiated by the remote handshake (hello/helloAck),
// so a dialer and a serve-worker built from different revisions refuse
// each other cleanly instead of mis-decoding frames. The stdio
// transport needs no handshake: dispatcher and child are the same
// binary by construction.
//
// Version 2 switched the post-handshake stream from self-contained
// frames (a fresh gob encoder per frame, re-sending type definitions
// every time) to one persistent encoder/decoder pair per connection.
// The handshake itself still uses one-shot codecs — the first value on
// a fresh gob stream has identical bytes either way, so version skew
// in either direction is detected before any stateful frame flows.
const protoVersion = 2

// crcTable is the Castagnoli polynomial used for the per-frame
// payload checksum (hardware-accelerated on the platforms we run on).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hello opens a remote connection: the dialer's first frame. The
// serve-worker answers with a helloAck before any cells flow.
type hello struct {
	// Version is the dialer's protoVersion; a mismatch is refused.
	Version int
	// Token is the shared secret (Options.AuthToken / serve-worker
	// -auth-token). Empty matches only a server that requires none.
	Token string
}

// helloAck answers a hello.
type helloAck struct {
	// OK reports that the server accepted the connection.
	OK bool
	// Err says why it did not ("bad auth token", version skew).
	Err string
	// Version is the server's protoVersion.
	Version int
}

// cellReq is one cell inside a request batch.
type cellReq struct {
	// Index is the cell's position in the sweep (diagnostics only).
	Index int
	// Key is the cell's stable identity; the worker seeds the cell's
	// RNG from (Seed, Key) via sim.SeedFor, exactly as the in-process
	// pool does.
	Key string
	// Spec names the handler and carries the cell's parameters.
	Spec engine.Spec
}

// request asks a worker to run a batch of cells in order. Batching is
// the round-trip amortization: one frame each way per Options.Batch
// cells instead of per cell, which is what makes small-cell sweeps
// worth distributing at all.
type request struct {
	// ID matches the response to the request on one connection.
	ID uint64
	// Seed is the sweep's base seed, shared by every cell in the batch.
	Seed uint64
	// Cells is the batch, never empty.
	Cells []cellReq
}

// cellResp reports one cell's outcome within a response batch.
type cellResp struct {
	// Key echoes the cell key.
	Key string
	// Value is the cell's result (nil on failure). Its concrete type
	// must be gob-registered on both sides; RegisterValue does this for
	// types beyond the defaults.
	Value interface{}
	// Err is the cell's ordinary error, "" for none.
	Err string
	// Panicked reports that the cell died by panic and was contained
	// in the worker; PanicVal is fmt.Sprint of the panic value and
	// Stack the goroutine stack at recovery.
	Panicked bool
	PanicVal string
	Stack    []byte
}

// response answers one request, with Results parallel to its Cells. A
// panic in one cell of a batch is contained per cell — the worker
// survives and the remaining cells of the batch still run.
type response struct {
	// ID echoes the request.
	ID uint64
	// Heartbeat marks a keep-alive frame emitted while the request's
	// batch is still executing: no Results, just proof the link and the
	// worker are alive. Heartbeats are what let the dispatcher tell a
	// slow cell (frames keep arriving) from a dead or stalled link
	// (silence past the deadline); they are consumed by the transport
	// and never reach the engine, so they cannot change output bytes.
	Heartbeat bool
	// Results holds one entry per requested cell, in request order.
	Results []cellResp
}

// writeFrame encodes v with a one-shot gob encoder and writes it as
// one length-prefixed frame: a 4-byte big-endian length, a 4-byte
// CRC-32C of the payload, then the gob bytes. The checksum catches
// payload corruption on transports (a TCP path through middleboxes)
// where a flipped bit could otherwise gob-decode into silently wrong
// science. One-shot codecs serve the handshake (which must decode
// without any stream state, across protocol versions) and tests; the
// request/response stream uses a frameWriter/frameReader pair so type
// definitions cross the wire once per connection, not once per frame.
func writeFrame(w io.Writer, v interface{}) error {
	return newFrameWriter(w).writeFrame(v)
}

// readFrame reads one length-prefixed frame into v with a one-shot
// decoder; see writeFrame for when the one-shot codecs apply. io.EOF
// at a frame boundary is returned as-is (a clean end of stream); a
// partial frame surfaces as io.ErrUnexpectedEOF; a checksum mismatch
// is a hard error that must retire the connection — after corruption
// the stream can never be trusted to be framed correctly again.
func readFrame(r io.Reader, v interface{}) error {
	return newFrameReader(r).readFrame(v)
}

// frameWriter frames gob values onto one stream with a persistent
// encoder: gob sends each type definition once per encoder, so reusing
// the encoder (and its staging buffer) removes the dominant per-frame
// cost — re-encoding and re-transmitting the wire types of request,
// response, and every registered row value on every frame. Any encode
// or write error leaves the stream unusable; callers already retire
// the connection on error, and a fresh connection gets fresh codecs.
type frameWriter struct {
	w   io.Writer
	enc *gob.Encoder
	buf bytes.Buffer
}

// newFrameWriter returns a frameWriter whose frames a frameReader (or,
// for the first frame only, a one-shot readFrame) can decode.
func newFrameWriter(w io.Writer) *frameWriter {
	fw := &frameWriter{w: w}
	fw.enc = gob.NewEncoder(&fw.buf)
	return fw
}

// writeFrame stages one gob message in the reused buffer, then writes
// the framing header and payload.
func (fw *frameWriter) writeFrame(v interface{}) error {
	fw.buf.Reset()
	if err := fw.enc.Encode(v); err != nil {
		return err
	}
	if fw.buf.Len() > maxFrame {
		return fmt.Errorf("dist: frame %d bytes exceeds limit %d", fw.buf.Len(), maxFrame)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(fw.buf.Len()))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(fw.buf.Bytes(), crcTable))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(fw.buf.Bytes())
	return err
}

// frameReader decodes the frame stream a frameWriter produces, with a
// persistent decoder fed one verified frame body at a time. Every
// frame's checksum is verified before any of its bytes reach gob, so
// corruption still surfaces as a hard framing error, never a
// mis-decode. The body buffer is reused across frames.
type frameReader struct {
	r    io.Reader
	dec  *gob.Decoder
	body []byte
	off  int
}

func newFrameReader(r io.Reader) *frameReader {
	fr := &frameReader{r: r}
	// frameReader implements io.ByteReader, so gob uses it directly
	// instead of interposing a bufio.Reader that could read ahead
	// across frame boundaries.
	fr.dec = gob.NewDecoder(fr)
	return fr
}

// readFrame decodes the next non-heartbeat gob message. The encoder
// side emits exactly one gob message per frame, so the decoder
// consumes frame bodies in lockstep with fill.
func (fr *frameReader) readFrame(v interface{}) error {
	return fr.dec.Decode(v)
}

// fill reads and verifies the next frame body. io.EOF at a frame
// boundary is returned as-is: through gob it becomes Decode's clean
// end-of-stream error.
func (fr *frameReader) fill() error {
	var hdr [8]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("dist: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	if uint32(cap(fr.body)) < n {
		fr.body = make([]byte, n)
	}
	fr.body = fr.body[:n]
	if _, err := io.ReadFull(fr.r, fr.body); err != nil {
		return fmt.Errorf("dist: reading %d-byte frame: %w", n, err)
	}
	if sum := crc32.Checksum(fr.body, crcTable); sum != binary.BigEndian.Uint32(hdr[4:]) {
		return fmt.Errorf("dist: frame checksum mismatch (%08x != %08x): corrupt stream", sum, binary.BigEndian.Uint32(hdr[4:]))
	}
	fr.off = 0
	return nil
}

// Read serves gob from the current frame body, fetching the next frame
// when the body is exhausted.
func (fr *frameReader) Read(p []byte) (int, error) {
	for fr.off >= len(fr.body) {
		if err := fr.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, fr.body[fr.off:])
	fr.off += n
	return n, nil
}

// ReadByte implements io.ByteReader for gob (see newFrameReader).
func (fr *frameReader) ReadByte() (byte, error) {
	for fr.off >= len(fr.body) {
		if err := fr.fill(); err != nil {
			return 0, err
		}
	}
	b := fr.body[fr.off]
	fr.off++
	return b, nil
}

// RegisterValue records a concrete type that cells transport in
// response values (directly or inside an engine.RowBatch), so gob can
// round-trip it through an interface. Call it from the same package
// init on both sides of the protocol — which, with a self-spawning
// worker binary, is one call site.
func RegisterValue(v interface{}) { gob.Register(v) }

func init() {
	// The row-value vocabulary of the experiment tables. gob
	// pre-registers the unnamed basics (int, float64, string, bool,
	// ...); the named types cells put in rows must be added here or via
	// RegisterValue so they survive the interface round-trip with their
	// concrete type — and thus their formatting — intact.
	gob.Register(engine.RowBatch{})
	gob.Register([]interface{}{})
	gob.Register(sim.Time(0))
	gob.Register(time.Duration(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
}
