package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"

	"dsa/internal/engine"
)

// Options configures a Pool.
type Options struct {
	// Workers is the number of child processes; it must be >= 1.
	Workers int
	// Command is the worker executable — typically the running binary
	// itself (os.Executable()) so the handler registry is identical on
	// both sides.
	Command string
	// Args are passed to Command before the protocol starts, e.g.
	// ["worker"].
	Args []string
	// Env is the child environment; nil inherits the parent's.
	Env []string
	// MaxRespawns bounds how many times one worker slot may be
	// respawned after a crash before the slot degrades to running its
	// cells in-process. <= 0 means DefaultMaxRespawns.
	MaxRespawns int
	// Batch is how many cells travel per protocol frame. One frame
	// each way then serves a whole batch, amortizing the gob+pipe
	// round trip across cells — the lever that makes small-cell sweeps
	// worth distributing. A worker crash costs at most one in-flight
	// batch (each cell a contained FAILED row). <= 0 means
	// DefaultBatch. Output bytes are identical at any batch size.
	Batch int
	// Stderr receives the children's stderr, each line prefixed with
	// the worker slot and its in-flight cell key so failures are
	// attributable. Nil means os.Stderr.
	Stderr io.Writer
}

// DefaultMaxRespawns is the per-slot crash-respawn budget.
const DefaultMaxRespawns = 2

// DefaultBatch is the per-frame cell count: one cell per frame, the
// maximally containment-friendly setting (a crash costs one cell).
const DefaultBatch = 1

// Stats counts a pool's traffic, for tests and operational summaries.
type Stats struct {
	// Remote is the number of cells executed in worker processes.
	Remote int
	// Local is the number of cells executed in the dispatching process
	// (spec-less jobs, exhausted slots, spawn failures).
	Local int
	// Crashes is the number of cells lost to a worker dying with work
	// in flight — at most one batch per crash; each lost cell surfaces
	// as one contained FAILED cell.
	Crashes int
	// Respawns is the number of replacement workers spawned after
	// crashes.
	Respawns int
	// Steals is the number of cells a worker took from another
	// worker's queue after draining its own.
	Steals int
}

// Summary renders the one-line operational summary the CLIs print on
// stderr after a distributed sweep; the CI dist-smoke gate greps this
// exact phrasing to prove cells really distributed.
func (s Stats) Summary(workers int) string {
	return fmt.Sprintf("%d cells in %d workers, %d in-process, %d crashes, %d steals",
		s.Remote, workers, s.Local, s.Crashes, s.Steals)
}

// Pool shards engine sweeps across a pool of worker processes: the
// out-of-process counterpart of the engine's default goroutine pool,
// implementing engine.Executor. Cells are pre-sharded round-robin onto
// the workers; a worker that drains its own queue steals from the
// longest remaining queue, so one skewed-cost cell cannot idle the
// rest of the pool.
//
// Children are spawned lazily and kept alive across sweeps (their
// per-process workload catalogs persist with them); Close shuts them
// down. Execute is safe for concurrent use: the battery scheduler
// (internal/engine/battery) runs whole sweeps concurrently over one
// pool, each worker slot serving one batch at a time whichever sweep
// it came from, so the worker count bounds total cell concurrency
// battery-wide. Cancelling one sweep's context never disturbs a child
// serving another sweep: only children whose in-flight batch belongs
// to the cancelled sweep are killed. Close must not be called
// concurrently with Execute.
type Pool struct {
	opts   Options
	stderr io.Writer
	slots  []*slot

	mu     sync.Mutex
	stats  Stats
	closed bool
}

// SelfPool builds a pool of this binary's own `worker` subcommand —
// the shape every self-spawning CLI shares. cacheDir, when nonempty,
// travels to the children as their -cache-dir flag, so the workers'
// stores read and write the dispatcher's cache directory.
func SelfPool(workers, batch int, cacheDir string) (*Pool, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	args := []string{"worker"}
	if cacheDir != "" {
		args = append(args, "-cache-dir", cacheDir)
	}
	return NewPool(Options{Workers: workers, Batch: batch, Command: exe, Args: args})
}

// NewPool validates the options and returns a pool. No children are
// spawned until the first remote cell is dispatched.
func NewPool(o Options) (*Pool, error) {
	if o.Workers < 1 {
		return nil, fmt.Errorf("dist: Workers = %d, need >= 1", o.Workers)
	}
	if o.Command == "" {
		return nil, fmt.Errorf("dist: Command is required")
	}
	if o.MaxRespawns <= 0 {
		o.MaxRespawns = DefaultMaxRespawns
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	p := &Pool{opts: o, stderr: o.Stderr}
	if p.stderr == nil {
		p.stderr = os.Stderr
	}
	p.slots = make([]*slot, o.Workers)
	for i := range p.slots {
		p.slots[i] = &slot{id: i, pool: p, tok: make(chan struct{}, 1)}
		p.slots[i].currentKey.Store("")
	}
	return p, nil
}

// Stats returns a snapshot of the pool's counters, accumulated across
// every sweep it has executed.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close kills and reaps every child. The pool's counters remain
// readable; Execute must not be called again.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	for _, s := range p.slots {
		s.teardown()
	}
	return nil
}

func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

func (p *Pool) count(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// Execute implements engine.Executor: it runs every job, reporting
// each exactly once. Cells with a Spec go to worker processes; cells
// without one run in this process through engine.RunJob (so mixed
// sweeps still complete, byte-identically). Cancellation kills the
// children whose in-flight batch belongs to this sweep — a child
// serving a concurrent sweep is untouched — and reports every
// unfinished cell with ctx.Err().
func (p *Pool) Execute(ctx context.Context, sw engine.SweepEnv, jobs []engine.Job, report func(engine.Result)) {
	if len(jobs) == 0 {
		return
	}
	qs := newQueues(len(p.slots), len(jobs))

	// Kill this sweep's children the moment it is cancelled, so a
	// worker stuck in a long cell cannot outlive its sweep. The kill is
	// ctx-scoped: a slot is only killed while its in-flight round trip
	// carries this sweep's context, which is what keeps concurrent
	// sweeps sharing the pool isolated from each other's cancellation.
	// (A killed child is torn down and its batch contained by the slot
	// goroutine's own round-trip error path.)
	watcherDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			for _, s := range p.slots {
				s.killIfServing(ctx)
			}
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for _, s := range p.slots {
		wg.Add(1)
		go func(s *slot) {
			defer wg.Done()
			for {
				// Claim the slot before taking work — one batch at a time
				// per slot, whichever sweep it came from, so the worker
				// count bounds total in-flight cells battery-wide. Claiming
				// first (rather than popping first) keeps unpopped cells
				// stealable by this sweep's other slots while a concurrent
				// sweep holds this one, and lets a cancelled or fully-
				// drained sweep stop waiting on a busy slot immediately.
				select {
				case s.tok <- struct{}{}:
				case <-ctx.Done():
					// Drain whatever is still queued as cancelled; other
					// slot goroutines may be draining concurrently, and
					// nextBatch hands each cell out exactly once.
					for {
						idxs, _, ok := qs.nextBatch(s.id, p.opts.Batch)
						if !ok {
							return
						}
						for _, idx := range idxs {
							report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: ctx.Err()})
						}
					}
				case <-qs.drained:
					return
				}
				idxs, stolen, ok := qs.nextBatch(s.id, p.opts.Batch)
				if !ok {
					<-s.tok
					return
				}
				if stolen > 0 {
					p.count(func(st *Stats) { st.Steals += stolen })
				}
				if err := ctx.Err(); err != nil {
					for _, idx := range idxs {
						report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: err})
					}
					<-s.tok
					continue
				}
				s.runBatch(ctx, sw, idxs, jobs, report)
				<-s.tok
			}
		}(s)
	}
	wg.Wait()
	close(stop)
	<-watcherDone
}

// slot is one worker seat: the protocol connection to a child process
// plus its crash accounting. The tok channel serializes batches onto
// the slot — concurrent sweeps sharing the pool take turns here, and
// unlike a mutex a waiter can abandon the claim on cancellation — and
// its holder owns every field except cmd/curCtx/currentKey, which have
// their own synchronization.
type slot struct {
	id   int
	pool *Pool

	tok      chan struct{} // slot ownership: send to claim, receive to release
	wbuf     *bufio.Writer
	rbuf     *bufio.Reader
	stdin    io.WriteCloser
	prefixer *PrefixWriter // the child's stderr line prefixer
	nextID   uint64
	crashes  int
	local    bool // respawn budget exhausted: run cells in-process

	// currentKey is the most recent cell (or batch) label, read
	// concurrently by the child's stderr prefixer; it is set before
	// each batch ships and deliberately never cleared (see runBatch).
	currentKey atomic.Value

	procMu sync.Mutex
	cmd    *exec.Cmd       // also read by the cancellation watchers
	curCtx context.Context // the in-flight batch's sweep context, nil when idle
	killed bool            // a watcher killed the child; respawn before reuse
}

// runBatch executes one batch of cells and reports each exactly once:
// cells with a Spec go to the slot's worker in a single protocol
// frame, the rest run in this process. A worker dying mid-batch is
// contained as FAILED cells for exactly the in-flight batch — the
// shape of an in-process contained panic, once per cell — and the slot
// respawns for subsequent batches within its budget.
func (s *slot) runBatch(ctx context.Context, sw engine.SweepEnv, idxs []int, jobs []engine.Job, report func(engine.Result)) {
	if err := ctx.Err(); err != nil {
		// The sweep was cancelled while this batch waited its turn on
		// the slot (a concurrent sweep held it): report, don't ship.
		for _, idx := range idxs {
			report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: err})
		}
		return
	}
	remote := make([]int, 0, len(idxs))
	for _, idx := range idxs {
		job := jobs[idx]
		if job.Spec == nil || job.Spec.Task == "" || s.local || s.pool.isClosed() {
			s.pool.count(func(st *Stats) { st.Local++ })
			report(engine.RunJob(ctx, idx, job, sw.Seed, sw.Catalog))
			continue
		}
		remote = append(remote, idx)
	}
	if len(remote) == 0 {
		return
	}
	if err := s.ensure(ctx); err != nil {
		// Could not (re)spawn a worker: the cells themselves are fine —
		// run them here. Determinism is key-derived, so the result is
		// byte-identical either way.
		fmt.Fprintf(s.pool.stderr, "dist: worker[%d]: %v; running %s in-process\n",
			s.id, err, batchLabel(jobs, remote))
		for _, idx := range remote {
			s.pool.count(func(st *Stats) { st.Local++ })
			report(engine.RunJob(ctx, idx, jobs[idx], sw.Seed, sw.Catalog))
		}
		return
	}

	// The label stays set after the batch completes (rather than being
	// cleared) because the child's stderr reaches the prefixer through
	// exec's copier goroutine, which may run after the response frame
	// has been read — clearing on return would race the copier and
	// strip the attribution off the very lines it names. Output between
	// batches is thus attributed to the most recent batch, which is
	// also the only plausible source.
	s.currentKey.Store(batchLabel(jobs, remote))
	s.nextID++
	req := request{ID: s.nextID, Seed: sw.Seed, Cells: make([]cellReq, len(remote))}
	for i, idx := range remote {
		req.Cells[i] = cellReq{Index: idx, Key: jobs[idx].Key, Spec: *jobs[idx].Spec}
	}
	// Publish which sweep this round trip serves, so that sweep's
	// cancellation watcher — and only that sweep's — may kill the child
	// mid-batch. Re-check the context after publishing: a cancellation
	// that fired in between saw curCtx unset (its watcher killed
	// nothing and has already exited), so without this check the batch
	// would ship and block uninterruptibly on a child nothing will ever
	// kill. Publish-then-check and check-then-kill both take procMu, so
	// every cancellation is seen by at least one side.
	s.setCurCtx(ctx)
	if err := ctx.Err(); err != nil {
		s.setCurCtx(nil)
		for _, idx := range remote {
			report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: err})
		}
		return
	}
	resp, err := s.roundTrip(&req)
	s.setCurCtx(nil)
	if err == nil && len(resp.Results) != len(remote) {
		err = fmt.Errorf("dist: %d results for %d cells", len(resp.Results), len(remote))
	}
	if err != nil {
		s.teardown()
		if ctx.Err() != nil {
			for _, idx := range remote {
				report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: ctx.Err()})
			}
			return
		}
		// The worker died with this batch in flight: contain every
		// in-flight cell as a FAILED cell (the sweep continues) and
		// note one crash against the respawn budget. The next batch on
		// this slot respawns within that budget.
		s.crashes++
		s.pool.count(func(st *Stats) { st.Crashes += len(remote) })
		for _, idx := range remote {
			key := jobs[idx].Key
			report(engine.Result{
				Key: key, Index: idx, Panicked: true,
				Err: &engine.PanicError{Key: key, Value: fmt.Sprintf("worker[%d] crashed: %v", s.id, err)},
			})
		}
		return
	}
	s.pool.count(func(st *Stats) { st.Remote += len(remote) })
	for i, idx := range remote {
		report(resultFrom(idx, jobs[idx].Key, &resp.Results[i]))
	}
}

// batchLabel names an in-flight batch for stderr attribution: the
// first cell's key, with a count when more ride along.
func batchLabel(jobs []engine.Job, idxs []int) string {
	if len(idxs) == 1 {
		return jobs[idxs[0]].Key
	}
	return fmt.Sprintf("%s (+%d)", jobs[idxs[0]].Key, len(idxs)-1)
}

// roundTrip sends one request and reads its response.
func (s *slot) roundTrip(req *request) (*response, error) {
	if err := writeFrame(s.wbuf, req); err != nil {
		return nil, err
	}
	if err := s.wbuf.Flush(); err != nil {
		return nil, err
	}
	var resp response
	if err := readFrame(s.rbuf, &resp); err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("dist: response %d for request %d", resp.ID, req.ID)
	}
	return &resp, nil
}

// resultFrom reconstructs an engine.Result from one wire cell result.
// A contained worker panic is rebuilt as a *engine.PanicError whose
// value is the worker's fmt.Sprint of the original panic value, so
// FAILED rows render byte-identically to in-process containment.
func resultFrom(idx int, key string, cr *cellResp) engine.Result {
	r := engine.Result{Key: key, Index: idx}
	switch {
	case cr.Panicked:
		r.Panicked = true
		r.Err = &engine.PanicError{Key: key, Value: cr.PanicVal, Stack: cr.Stack}
	case cr.Err != "":
		r.Err = fmt.Errorf("dist: %s", cr.Err)
	default:
		r.Value = cr.Value
	}
	return r
}

// ensure makes sure the slot has a live child, spawning (or
// respawning, within the crash budget) as needed.
func (s *slot) ensure(ctx context.Context) error {
	s.procMu.Lock()
	alive := s.cmd != nil && !s.killed
	reap := s.cmd != nil && s.killed
	s.procMu.Unlock()
	if alive {
		return nil
	}
	if reap {
		// A cancellation watcher killed the child after its last batch
		// completed; reap it and fall through to a fresh spawn.
		s.teardown()
	}
	if s.crashes > s.pool.opts.MaxRespawns {
		s.local = true
		return fmt.Errorf("respawn budget exhausted after %d crashes", s.crashes)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.spawn(); err != nil {
		s.crashes++
		return fmt.Errorf("spawning %s: %w", s.pool.opts.Command, err)
	}
	if s.crashes > 0 {
		s.pool.count(func(st *Stats) { st.Respawns++ })
	}
	return nil
}

// spawn starts a child and wires up the protocol pipes. The child's
// stderr flows through a line prefixer naming the slot and its
// in-flight cell key, so anything a crashing worker manages to say is
// attributable to the cell that killed it.
func (s *slot) spawn() error {
	cmd := exec.Command(s.pool.opts.Command, s.pool.opts.Args...)
	if s.pool.opts.Env != nil {
		cmd.Env = s.pool.opts.Env
	}
	s.prefixer = NewPrefixWriter(s.pool.stderr, func() string {
		if k, _ := s.currentKey.Load().(string); k != "" {
			return fmt.Sprintf("worker[%d] %s: ", s.id, k)
		}
		return fmt.Sprintf("worker[%d]: ", s.id)
	})
	cmd.Stderr = s.prefixer
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	s.stdin = stdin
	s.wbuf = bufio.NewWriter(stdin)
	s.rbuf = bufio.NewReader(stdout)
	s.procMu.Lock()
	s.cmd = cmd
	s.procMu.Unlock()
	return nil
}

// setCurCtx publishes (or clears) the sweep context of the slot's
// in-flight round trip for the cancellation watchers.
func (s *slot) setCurCtx(ctx context.Context) {
	s.procMu.Lock()
	s.curCtx = ctx
	s.procMu.Unlock()
}

// killIfServing signals the child iff its in-flight batch belongs to
// ctx's sweep (safe from a watcher goroutine while a slot goroutine
// owns the pipes). An idle child, or one serving a concurrent sweep,
// is left alone: the cancelled sweep's remaining cells are reported
// with ctx.Err() without ever reaching a worker, and killing a shared
// child would turn another sweep's healthy batch into FAILED rows.
func (s *slot) killIfServing(ctx context.Context) {
	s.procMu.Lock()
	defer s.procMu.Unlock()
	if s.curCtx != ctx {
		return
	}
	if s.cmd != nil && s.cmd.Process != nil {
		_ = s.cmd.Process.Kill()
		// Tombstone the corpse: the kill can land just after the batch's
		// response was read, in which case the slot goroutine sees a
		// clean round trip and would otherwise ship the next sweep's
		// batch to a dead child. ensure() reaps and respawns instead —
		// without charging the crash budget, since nothing crashed.
		s.killed = true
	}
}

// teardown kills and reaps the child and drops the connection.
func (s *slot) teardown() {
	s.procMu.Lock()
	cmd := s.cmd
	s.cmd = nil
	s.killed = false
	s.procMu.Unlock()
	if cmd == nil {
		return
	}
	if s.stdin != nil {
		_ = s.stdin.Close()
	}
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
	_ = cmd.Wait()
	if s.prefixer != nil {
		// Wait has drained the child's stderr; recover whatever partial
		// line a crashing worker got out before dying, prefixed like
		// every other line, instead of dropping it.
		_ = s.prefixer.Flush()
	}
	s.stdin, s.wbuf, s.rbuf, s.prefixer = nil, nil, nil, nil
}

// queues pre-shards a sweep's cell indices round-robin across the
// worker slots and hands them out in batches with work stealing: a
// slot pops up to its batch size from the head of its own queue until
// empty, then steals up to a batch from the tail of the longest other
// queue. Round-robin keeps the no-contention path cheap and
// deterministic; stealing keeps every worker busy when cell costs are
// skewed. (Result bytes never depend on which worker runs a cell —
// seeding is key-derived and aggregation is index-ordered — so
// stealing is pure load balancing.)
type queues struct {
	mu      sync.Mutex
	q       [][]int
	left    int           // cells not yet handed out
	drained chan struct{} // closed when the last cell is handed out
}

func newQueues(slots, jobs int) *queues {
	qs := &queues{q: make([][]int, slots), left: jobs, drained: make(chan struct{})}
	for i := 0; i < jobs; i++ {
		s := i % slots
		qs.q[s] = append(qs.q[s], i)
	}
	if jobs == 0 {
		close(qs.drained)
	}
	return qs
}

// take accounts n cells handed out, signalling drained at zero so slot
// goroutines waiting on a busy slot can stop waiting once no work is
// left anywhere. Callers hold qs.mu.
func (qs *queues) take(n int) {
	qs.left -= n
	if qs.left == 0 {
		close(qs.drained)
	}
}

// nextBatch returns up to max cell indices for slot, with stolen
// counting how many came from another slot's queue, or ok=false when
// no work remains anywhere. A batch never mixes own and stolen work:
// partial own batches ship as-is rather than waiting on a steal, so a
// short queue drains promptly.
func (qs *queues) nextBatch(slot, max int) (idxs []int, stolen int, ok bool) {
	if max < 1 {
		max = 1
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if own := qs.q[slot]; len(own) > 0 {
		n := max
		if n > len(own) {
			n = len(own)
		}
		idxs = own[:n:n]
		qs.q[slot] = own[n:]
		qs.take(n)
		return idxs, 0, true
	}
	victim, longest := -1, 0
	for i, q := range qs.q {
		if i != slot && len(q) > longest {
			victim, longest = i, len(q)
		}
	}
	if victim < 0 {
		return nil, 0, false
	}
	vq := qs.q[victim]
	n := max
	if n > len(vq) {
		n = len(vq)
	}
	idxs = append(idxs, vq[len(vq)-n:]...)
	qs.q[victim] = vq[:len(vq)-n]
	qs.take(n)
	return idxs, n, true
}
