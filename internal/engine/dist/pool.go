package dist

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dsa/internal/engine"
)

// Options configures a Pool.
type Options struct {
	// Workers is the number of local child processes. It must be >= 1
	// unless Remote supplies the slots instead, in which case 0 means a
	// purely remote pool.
	Workers int
	// Command is the worker executable — typically the running binary
	// itself (os.Executable()) so the handler registry is identical on
	// both sides. Required when Workers > 0.
	Command string
	// Args are passed to Command before the protocol starts, e.g.
	// ["worker"].
	Args []string
	// Env is the child environment; nil inherits the parent's.
	Env []string
	// Remote lists serve-worker endpoints ("host:port"); each
	// contributes one remote slot alongside the Workers local slots.
	// Remote slots dial lazily like local slots spawn lazily, share the
	// same batching, stealing and containment machinery, and degrade to
	// in-process execution when their reconnect budget (MaxRespawns) is
	// exhausted — a sweep never wedges on a dead endpoint.
	Remote []string
	// AuthToken is sent in the remote handshake; it must match the
	// serve-workers' -auth-token. Empty matches only servers that
	// require none.
	AuthToken string
	// LinkTimeout is how long a remote link may stay silent — no
	// heartbeat, no response — before it is declared dead and its
	// in-flight batch contained. <= 0 means DefaultLinkTimeout. Local
	// stdio children need no deadline: their death is pipe EOF.
	LinkTimeout time.Duration
	// DialTimeout bounds connecting (dial + handshake) to a remote
	// endpoint. <= 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// MaxRespawns bounds how many times one worker slot may be
	// respawned after a crash — or one remote slot reconnected after a
	// link failure — before the slot degrades to running its cells
	// in-process. <= 0 means DefaultMaxRespawns.
	MaxRespawns int
	// Batch is how many cells travel per protocol frame. One frame
	// each way then serves a whole batch, amortizing the gob+pipe
	// round trip across cells — the lever that makes small-cell sweeps
	// worth distributing. A worker crash costs at most one in-flight
	// batch (each cell a contained FAILED row). <= 0 means
	// DefaultBatch. Output bytes are identical at any batch size.
	Batch int
	// AdaptiveBatch sizes batches from measured cell cost instead of
	// the static Batch: each slot tracks an exponential moving average
	// of its per-cell round-trip latency and ships enough cells per
	// frame to target AdaptiveTargetLatency of work — cheap cells
	// amortize the frame overhead in large batches, expensive cells ship
	// one or two at a time so a crash or cancellation costs little. The
	// first frame on each slot carries a single probe cell. Batch (when
	// > 1) caps the adaptive size; otherwise AdaptiveMaxBatch does.
	// Output bytes are identical either way — batch size is pure
	// scheduling.
	AdaptiveBatch bool
	// Stderr receives the children's stderr, each line prefixed with
	// the worker slot and its in-flight cell key so failures are
	// attributable. Nil means os.Stderr.
	Stderr io.Writer
}

// DefaultMaxRespawns is the per-slot crash-respawn budget.
const DefaultMaxRespawns = 2

// DefaultBatch is the per-frame cell count: one cell per frame, the
// maximally containment-friendly setting (a crash costs one cell).
const DefaultBatch = 1

// AdaptiveTargetLatency is the per-frame work budget adaptive batching
// aims for: enough cells that frame overhead is noise, few enough that
// a crash contains quickly and stealing stays effective.
const AdaptiveTargetLatency = 25 * time.Millisecond

// AdaptiveMaxBatch caps the adaptive batch size when Options.Batch
// does not (Batch <= 1): very cheap cells would otherwise drive the
// size toward whole-queue frames, defeating work stealing.
const AdaptiveMaxBatch = 32

// Stats counts a pool's traffic, for tests and operational summaries.
type Stats struct {
	// Remote is the number of cells executed in worker processes.
	Remote int
	// Local is the number of cells executed in the dispatching process
	// (spec-less jobs, exhausted slots, spawn failures).
	Local int
	// Crashes is the number of cells lost to a worker dying with work
	// in flight — at most one batch per crash; each lost cell surfaces
	// as one contained FAILED cell.
	Crashes int
	// Respawns is the number of replacement workers spawned after
	// crashes.
	Respawns int
	// Steals is the number of cells a worker took from another
	// worker's queue after draining its own.
	Steals int
}

// Summary renders the one-line operational summary the CLIs print on
// stderr after a distributed sweep; the CI dist-smoke gate greps this
// exact phrasing to prove cells really distributed.
func (s Stats) Summary(workers int) string {
	return fmt.Sprintf("%d cells in %d workers, %d in-process, %d crashes, %d steals",
		s.Remote, workers, s.Local, s.Crashes, s.Steals)
}

// Pool shards engine sweeps across a pool of worker slots — local
// child processes (Workers) and/or remote serve-workers (Remote): the
// out-of-process counterpart of the engine's default goroutine pool,
// implementing engine.Executor. Cells are pre-sharded round-robin onto
// the slots; a slot that drains its own queue steals from the longest
// remaining queue, so one skewed-cost cell cannot idle the rest of the
// pool.
//
// Children are spawned — and endpoints dialed — lazily, and links are
// kept alive across sweeps (the workers' per-process workload catalogs
// persist with them); Close shuts them down. Execute is safe for concurrent use: the battery scheduler
// (internal/engine/battery) runs whole sweeps concurrently over one
// pool, each worker slot serving one batch at a time whichever sweep
// it came from, so the worker count bounds total cell concurrency
// battery-wide. Cancelling one sweep's context never disturbs a child
// serving another sweep: only children whose in-flight batch belongs
// to the cancelled sweep are killed. Close must not be called
// concurrently with Execute.
type Pool struct {
	opts   Options
	stderr io.Writer
	slots  []*slot

	mu     sync.Mutex
	stats  Stats
	closed bool
}

// SelfPool builds a pool of this binary's own `worker` subcommand —
// the shape every self-spawning CLI shares — plus one remote slot per
// endpoint in remote, dialed with authToken. cacheDir, when nonempty,
// travels to the children as their -cache-dir flag, so the workers'
// stores read and write the dispatcher's cache directory (remote
// serve-workers warm their own -cache-dir instead). workers may be 0
// when remote endpoints supply all the slots.
func SelfPool(workers, batch int, cacheDir string, remote []string, authToken string) (*Pool, error) {
	o, err := selfOptions(workers, batch, cacheDir, remote, authToken)
	if err != nil {
		return nil, err
	}
	return NewPool(o)
}

// selfOptions builds the self-spawning option set SelfPool and
// PoolFromConfig share.
func selfOptions(workers, batch int, cacheDir string, remote []string, authToken string) (Options, error) {
	o := Options{Workers: workers, Batch: batch, Remote: remote, AuthToken: authToken}
	if workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return Options{}, err
		}
		o.Command = exe
		o.Args = []string{"worker"}
		if cacheDir != "" {
			o.Args = append(o.Args, "-cache-dir", cacheDir)
		}
	}
	return o, nil
}

// PoolFromConfig builds the worker pool an engine.Config asks for:
// SelfPool over its Workers, Batch, CacheDir, Remote, AuthToken and
// AdaptiveBatch fields. It returns (nil, nil) when the config asks for
// no distribution (Workers 0 and no Remote endpoints), so callers can
// unconditionally route their flags through here and only wire an
// executor when one came back.
func PoolFromConfig(c engine.Config) (*Pool, error) {
	if !c.Distributed() {
		return nil, nil
	}
	o, err := selfOptions(c.Workers, c.Batch, c.CacheDir, c.Remote, c.AuthToken)
	if err != nil {
		return nil, err
	}
	o.AdaptiveBatch = c.AdaptiveBatch
	return NewPool(o)
}

// NewPool validates the options and returns a pool. No children are
// spawned and no endpoints dialed until the first remote cell is
// dispatched.
func NewPool(o Options) (*Pool, error) {
	if o.Workers < 1 && len(o.Remote) == 0 {
		return nil, fmt.Errorf("dist: Workers = %d, need >= 1", o.Workers)
	}
	if o.Workers < 0 {
		return nil, fmt.Errorf("dist: Workers = %d, need >= 0", o.Workers)
	}
	if o.Workers > 0 && o.Command == "" {
		return nil, fmt.Errorf("dist: Command is required")
	}
	for _, ep := range o.Remote {
		if ep == "" {
			return nil, fmt.Errorf("dist: empty Remote endpoint")
		}
	}
	if o.MaxRespawns <= 0 {
		o.MaxRespawns = DefaultMaxRespawns
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	if o.LinkTimeout <= 0 {
		o.LinkTimeout = DefaultLinkTimeout
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	p := &Pool{opts: o, stderr: o.Stderr}
	if p.stderr == nil {
		p.stderr = os.Stderr
	}
	p.slots = make([]*slot, o.Workers+len(o.Remote))
	for i := range p.slots {
		s := &slot{id: i, pool: p, tok: make(chan struct{}, 1)}
		if i < o.Workers {
			s.name = fmt.Sprintf("worker[%d]", i)
		} else {
			s.endpoint = o.Remote[i-o.Workers]
			s.name = fmt.Sprintf("worker[%s]", s.endpoint)
		}
		s.currentKey.Store("")
		p.slots[i] = s
	}
	return p, nil
}

// Stats returns a snapshot of the pool's counters, accumulated across
// every sweep it has executed.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close kills and reaps every child. The pool's counters remain
// readable; Execute must not be called again.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	for _, s := range p.slots {
		s.teardown()
	}
	return nil
}

func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

func (p *Pool) count(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// Execute implements engine.Executor: it runs every job, reporting
// each exactly once. Cells with a Spec go to worker processes; cells
// without one run in this process through engine.RunJob (so mixed
// sweeps still complete, byte-identically). Cancellation kills the
// children whose in-flight batch belongs to this sweep — a child
// serving a concurrent sweep is untouched — and reports every
// unfinished cell with ctx.Err().
func (p *Pool) Execute(ctx context.Context, sw engine.SweepEnv, jobs []engine.Job, report func(engine.Result)) {
	if len(jobs) == 0 {
		return
	}
	qs := newQueues(len(p.slots), len(jobs))

	// Kill this sweep's children the moment it is cancelled, so a
	// worker stuck in a long cell cannot outlive its sweep. The kill is
	// ctx-scoped: a slot is only killed while its in-flight round trip
	// carries this sweep's context, which is what keeps concurrent
	// sweeps sharing the pool isolated from each other's cancellation.
	// (A killed child is torn down and its batch contained by the slot
	// goroutine's own round-trip error path.)
	watcherDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			for _, s := range p.slots {
				s.killIfServing(ctx)
			}
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for _, s := range p.slots {
		wg.Add(1)
		go func(s *slot) {
			defer wg.Done()
			for {
				// Claim the slot before taking work — one batch at a time
				// per slot, whichever sweep it came from, so the worker
				// count bounds total in-flight cells battery-wide. Claiming
				// first (rather than popping first) keeps unpopped cells
				// stealable by this sweep's other slots while a concurrent
				// sweep holds this one, and lets a cancelled or fully-
				// drained sweep stop waiting on a busy slot immediately.
				select {
				case s.tok <- struct{}{}:
				case <-ctx.Done():
					// Drain whatever is still queued as cancelled; other
					// slot goroutines may be draining concurrently, and
					// nextBatch hands each cell out exactly once.
					for {
						idxs, _, ok := qs.nextBatch(s.id, s.batchSize())
						if !ok {
							return
						}
						for _, idx := range idxs {
							report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: ctx.Err()})
						}
					}
				case <-qs.drained:
					return
				}
				idxs, stolen, ok := qs.nextBatch(s.id, s.batchSize())
				if !ok {
					<-s.tok
					return
				}
				if stolen > 0 {
					p.count(func(st *Stats) { st.Steals += stolen })
				}
				if err := ctx.Err(); err != nil {
					for _, idx := range idxs {
						report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: err})
					}
					<-s.tok
					continue
				}
				s.runBatch(ctx, sw, idxs, jobs, report)
				<-s.tok
			}
		}(s)
	}
	wg.Wait()
	close(stop)
	<-watcherDone
}

// slot is one worker seat: the protocol link to a worker — a local
// child process or a remote serve-worker — plus its crash accounting.
// The tok channel serializes batches onto the slot — concurrent sweeps
// sharing the pool take turns here, and unlike a mutex a waiter can
// abandon the claim on cancellation — and its holder owns every field
// except live/curCtx/currentKey, which have their own synchronization.
type slot struct {
	id       int
	pool     *Pool
	name     string // "worker[0]" for local slots, "worker[host:port]" for remote
	endpoint string // "" for local slots, "host:port" for remote

	tok     chan struct{} // slot ownership: send to claim, receive to release
	nextID  uint64
	crashes int  // crashes (local) or link failures (remote), against MaxRespawns
	local   bool // respawn/reconnect budget exhausted: run cells in-process

	// currentKey is the most recent cell (or batch) label, read
	// concurrently by the child's stderr prefixer; it is set before
	// each batch ships and deliberately never cleared (see runBatch).
	currentKey atomic.Value

	procMu sync.Mutex
	live   link            // the connected link; also read by the cancellation watchers
	curCtx context.Context // the in-flight batch's sweep context, nil when idle
	killed bool            // a watcher killed the link; reconnect before reuse

	// cellEWMA holds the float64 bits of this slot's moving average of
	// per-cell round-trip latency (ns). Written under tok ownership in
	// runBatch, read without it by batchSize — hence atomic. Zero means
	// unmeasured (the next frame is a single probe cell).
	cellEWMA atomic.Uint64
}

// batchSize is how many cells the slot's next frame should carry:
// the static Options.Batch, or — with AdaptiveBatch — enough cells to
// fill AdaptiveTargetLatency at the slot's measured per-cell cost.
func (s *slot) batchSize() int {
	o := &s.pool.opts
	if !o.AdaptiveBatch {
		return o.Batch
	}
	ewma := math.Float64frombits(s.cellEWMA.Load())
	if ewma <= 0 {
		return 1 // unmeasured: probe with one cell
	}
	n := int(float64(AdaptiveTargetLatency) / ewma)
	cap := AdaptiveMaxBatch
	if o.Batch > 1 {
		cap = o.Batch
	}
	if n > cap {
		n = cap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// observeBatch folds one frame's measured per-cell latency into the
// slot's moving average. A half-weight EWMA tracks drifting cell costs
// across a sweep (and across sweeps sharing the pool) without letting
// one outlier frame swing the batch size far.
func (s *slot) observeBatch(elapsed time.Duration, cells int) {
	if cells <= 0 {
		return
	}
	perCell := float64(elapsed) / float64(cells)
	if old := math.Float64frombits(s.cellEWMA.Load()); old > 0 {
		perCell = old/2 + perCell/2
	}
	s.cellEWMA.Store(math.Float64bits(perCell))
}

// runBatch executes one batch of cells and reports each exactly once:
// cells with a Spec go to the slot's worker in a single protocol
// frame, the rest run in this process. A worker dying mid-batch is
// contained as FAILED cells for exactly the in-flight batch — the
// shape of an in-process contained panic, once per cell — and the slot
// respawns for subsequent batches within its budget.
func (s *slot) runBatch(ctx context.Context, sw engine.SweepEnv, idxs []int, jobs []engine.Job, report func(engine.Result)) {
	if err := ctx.Err(); err != nil {
		// The sweep was cancelled while this batch waited its turn on
		// the slot (a concurrent sweep held it): report, don't ship.
		for _, idx := range idxs {
			report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: err})
		}
		return
	}
	remote := make([]int, 0, len(idxs))
	for _, idx := range idxs {
		job := jobs[idx]
		if job.Spec == nil || job.Spec.Task == "" || s.local || s.pool.isClosed() {
			s.pool.count(func(st *Stats) { st.Local++ })
			report(engine.RunJob(ctx, idx, job, sw.Seed, sw.Catalog))
			continue
		}
		remote = append(remote, idx)
	}
	if len(remote) == 0 {
		return
	}
	if err := s.ensure(ctx); err != nil {
		// Could not (re)spawn a worker or (re)dial an endpoint: the
		// cells themselves are fine — run them here. Determinism is
		// key-derived, so the result is byte-identical either way.
		fmt.Fprintf(s.pool.stderr, "dist: %s: %v; running %s in-process\n",
			s.name, err, batchLabel(jobs, remote))
		for _, idx := range remote {
			s.pool.count(func(st *Stats) { st.Local++ })
			report(engine.RunJob(ctx, idx, jobs[idx], sw.Seed, sw.Catalog))
		}
		return
	}

	// The label stays set after the batch completes (rather than being
	// cleared) because the child's stderr reaches the prefixer through
	// exec's copier goroutine, which may run after the response frame
	// has been read — clearing on return would race the copier and
	// strip the attribution off the very lines it names. Output between
	// batches is thus attributed to the most recent batch, which is
	// also the only plausible source.
	s.currentKey.Store(batchLabel(jobs, remote))
	s.nextID++
	req := request{ID: s.nextID, Seed: sw.Seed, Cells: make([]cellReq, len(remote))}
	for i, idx := range remote {
		req.Cells[i] = cellReq{Index: idx, Key: jobs[idx].Key, Spec: *jobs[idx].Spec}
	}
	// Publish which sweep this round trip serves, so that sweep's
	// cancellation watcher — and only that sweep's — may kill the child
	// mid-batch. Re-check the context after publishing: a cancellation
	// that fired in between saw curCtx unset (its watcher killed
	// nothing and has already exited), so without this check the batch
	// would ship and block uninterruptibly on a child nothing will ever
	// kill. Publish-then-check and check-then-kill both take procMu, so
	// every cancellation is seen by at least one side.
	s.setCurCtx(ctx)
	if err := ctx.Err(); err != nil {
		s.setCurCtx(nil)
		for _, idx := range remote {
			report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: err})
		}
		return
	}
	start := time.Now()
	resp, err := s.roundTrip(&req)
	s.setCurCtx(nil)
	if err == nil && s.pool.opts.AdaptiveBatch {
		s.observeBatch(time.Since(start), len(remote))
	}
	if err == nil && len(resp.Results) != len(remote) {
		err = fmt.Errorf("dist: %d results for %d cells", len(resp.Results), len(remote))
	}
	if err != nil {
		s.teardown()
		if ctx.Err() != nil {
			for _, idx := range remote {
				report(engine.Result{Key: jobs[idx].Key, Index: idx, Err: ctx.Err()})
			}
			return
		}
		// The worker died — or its link did — with this batch in
		// flight: contain every in-flight cell as a FAILED cell (the
		// sweep continues) and note one crash against the
		// respawn/reconnect budget. The next batch on this slot
		// respawns or redials within that budget.
		s.crashes++
		s.pool.count(func(st *Stats) { st.Crashes += len(remote) })
		if s.endpoint != "" {
			// A local child's own stderr shows why it died; a remote
			// worker's stderr stays on its host, so the dispatcher-side
			// line is the only attribution this side of the wire.
			fmt.Fprintf(s.pool.stderr, "dist: %s: link retired: %v (batch %s contained)\n",
				s.name, err, batchLabel(jobs, remote))
		}
		for _, idx := range remote {
			key := jobs[idx].Key
			report(engine.Result{
				Key: key, Index: idx, Panicked: true,
				Err: &engine.PanicError{Key: key, Value: fmt.Sprintf("%s crashed: %v", s.name, err)},
			})
		}
		return
	}
	s.pool.count(func(st *Stats) { st.Remote += len(remote) })
	for i, idx := range remote {
		report(resultFrom(idx, jobs[idx].Key, &resp.Results[i]))
	}
}

// batchLabel names an in-flight batch for stderr attribution: the
// first cell's key, with a count when more ride along.
func batchLabel(jobs []engine.Job, idxs []int) string {
	if len(idxs) == 1 {
		return jobs[idxs[0]].Key
	}
	return fmt.Sprintf("%s (+%d)", jobs[idxs[0]].Key, len(idxs)-1)
}

// roundTrip sends one request over the slot's link and blocks for its
// response. The link consumes heartbeat frames itself; for remote
// links each frame also re-arms the silence deadline.
func (s *slot) roundTrip(req *request) (*response, error) {
	s.procMu.Lock()
	ln := s.live
	s.procMu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("dist: %s: link closed", s.name)
	}
	return ln.roundTrip(req)
}

// resultFrom reconstructs an engine.Result from one wire cell result.
// A contained worker panic is rebuilt as a *engine.PanicError whose
// value is the worker's fmt.Sprint of the original panic value, so
// FAILED rows render byte-identically to in-process containment.
func resultFrom(idx int, key string, cr *cellResp) engine.Result {
	r := engine.Result{Key: key, Index: idx}
	switch {
	case cr.Panicked:
		r.Panicked = true
		r.Err = &engine.PanicError{Key: key, Value: cr.PanicVal, Stack: cr.Stack}
	case cr.Err != "":
		r.Err = fmt.Errorf("dist: %s", cr.Err)
	default:
		r.Value = cr.Value
	}
	return r
}

// ensure makes sure the slot has a live link, spawning a child or
// dialing the slot's endpoint (or re-doing either, within the shared
// crash/reconnect budget) as needed.
func (s *slot) ensure(ctx context.Context) error {
	s.procMu.Lock()
	alive := s.live != nil && !s.killed
	reap := s.live != nil && s.killed
	s.procMu.Unlock()
	if alive {
		return nil
	}
	if reap {
		// A cancellation watcher killed the link after its last batch
		// completed; reap it and fall through to a fresh connect.
		s.teardown()
	}
	if s.crashes > s.pool.opts.MaxRespawns {
		s.local = true
		if s.endpoint != "" {
			return fmt.Errorf("reconnect budget exhausted after %d link failures", s.crashes)
		}
		return fmt.Errorf("respawn budget exhausted after %d crashes", s.crashes)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.connect(ctx); err != nil {
		s.crashes++
		return err
	}
	if s.crashes > 0 {
		s.pool.count(func(st *Stats) { st.Respawns++ })
	}
	return nil
}

// connect establishes the slot's link: local slots spawn a worker
// child whose stderr flows through a line prefixer naming the slot and
// its in-flight cell key — so anything a crashing worker manages to
// say is attributable to the cell that killed it — and remote slots
// dial their serve-worker endpoint and handshake. (A remote worker's
// own stderr stays on its host, prefixed there per connection; this
// side attributes link events by endpoint instead.)
func (s *slot) connect(ctx context.Context) error {
	var (
		ln  link
		err error
	)
	if s.endpoint != "" {
		ln, err = dialRemote(ctx, s.endpoint, s.pool.opts.AuthToken, s.pool.opts.LinkTimeout, s.pool.opts.DialTimeout)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", s.endpoint, err)
		}
	} else {
		prefixer := NewPrefixWriter(s.pool.stderr, func() string {
			if k, _ := s.currentKey.Load().(string); k != "" {
				return fmt.Sprintf("%s %s: ", s.name, k)
			}
			return s.name + ": "
		})
		ln, err = spawnProc(s.pool.opts.Command, s.pool.opts.Args, s.pool.opts.Env, prefixer)
		if err != nil {
			return fmt.Errorf("spawning %s: %w", s.pool.opts.Command, err)
		}
	}
	s.procMu.Lock()
	s.live = ln
	s.procMu.Unlock()
	return nil
}

// setCurCtx publishes (or clears) the sweep context of the slot's
// in-flight round trip for the cancellation watchers.
func (s *slot) setCurCtx(ctx context.Context) {
	s.procMu.Lock()
	s.curCtx = ctx
	s.procMu.Unlock()
}

// killIfServing takes the link down iff its in-flight batch belongs to
// ctx's sweep (safe from a watcher goroutine while a slot goroutine
// owns the link — kill is the link's one async-safe method). An idle
// link, or one serving a concurrent sweep, is left alone: the
// cancelled sweep's remaining cells are reported with ctx.Err()
// without ever reaching a worker, and killing a shared link would turn
// another sweep's healthy batch into FAILED rows.
func (s *slot) killIfServing(ctx context.Context) {
	s.procMu.Lock()
	defer s.procMu.Unlock()
	if s.curCtx != ctx {
		return
	}
	if s.live != nil {
		s.live.kill()
		// Tombstone the corpse: the kill can land just after the batch's
		// response was read, in which case the slot goroutine sees a
		// clean round trip and would otherwise ship the next sweep's
		// batch over a dead link. ensure() reaps and reconnects instead —
		// without charging the crash budget, since nothing crashed.
		s.killed = true
	}
}

// teardown retires the slot's link: kills and reaps the child, or
// closes the connection.
func (s *slot) teardown() {
	s.procMu.Lock()
	ln := s.live
	s.live = nil
	s.killed = false
	s.procMu.Unlock()
	if ln != nil {
		ln.close()
	}
}

// queues pre-shards a sweep's cell indices round-robin across the
// worker slots and hands them out in batches with work stealing: a
// slot pops up to its batch size from the head of its own queue until
// empty, then steals up to a batch from the tail of the longest other
// queue. Round-robin keeps the no-contention path cheap and
// deterministic; stealing keeps every worker busy when cell costs are
// skewed. (Result bytes never depend on which worker runs a cell —
// seeding is key-derived and aggregation is index-ordered — so
// stealing is pure load balancing.)
type queues struct {
	mu      sync.Mutex
	q       [][]int
	left    int           // cells not yet handed out
	drained chan struct{} // closed when the last cell is handed out
}

func newQueues(slots, jobs int) *queues {
	qs := &queues{q: make([][]int, slots), left: jobs, drained: make(chan struct{})}
	for i := 0; i < jobs; i++ {
		s := i % slots
		qs.q[s] = append(qs.q[s], i)
	}
	if jobs == 0 {
		close(qs.drained)
	}
	return qs
}

// take accounts n cells handed out, signalling drained at zero so slot
// goroutines waiting on a busy slot can stop waiting once no work is
// left anywhere. Callers hold qs.mu.
func (qs *queues) take(n int) {
	qs.left -= n
	if qs.left == 0 {
		close(qs.drained)
	}
}

// nextBatch returns up to max cell indices for slot, with stolen
// counting how many came from another slot's queue, or ok=false when
// no work remains anywhere. A batch never mixes own and stolen work:
// partial own batches ship as-is rather than waiting on a steal, so a
// short queue drains promptly.
func (qs *queues) nextBatch(slot, max int) (idxs []int, stolen int, ok bool) {
	if max < 1 {
		max = 1
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if own := qs.q[slot]; len(own) > 0 {
		n := max
		if n > len(own) {
			n = len(own)
		}
		idxs = own[:n:n]
		qs.q[slot] = own[n:]
		qs.take(n)
		return idxs, 0, true
	}
	victim, longest := -1, 0
	for i, q := range qs.q {
		if i != slot && len(q) > longest {
			victim, longest = i, len(q)
		}
	}
	if victim < 0 {
		return nil, 0, false
	}
	vq := qs.q[victim]
	n := max
	if n > len(vq) {
		n = len(vq)
	}
	idxs = append(idxs, vq[len(vq)-n:]...)
	qs.q[victim] = vq[:len(vq)-n]
	qs.take(n)
	return idxs, n, true
}
