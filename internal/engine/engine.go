// Package engine is the concurrent sweep runner behind
// internal/experiments: it fans independent simulation jobs (one per
// machine config × workload × policy cell) out across a bounded worker
// pool and streams their results back to an aggregation stage in
// deterministic job order.
//
// Three properties make sweeps safe to parallelize:
//
//   - Deterministic seeding. Every job receives an RNG seeded from
//     (base seed, job key) via sim.SeedFor, never from submission
//     order or scheduling, so a sweep reproduces bit-for-bit at any
//     parallelism.
//   - Fault containment. A job that panics is recovered inside its
//     worker and recorded as a failed cell (Result.Panicked with a
//     *PanicError) instead of sinking the whole sweep — the
//     application-level fault-tolerance posture: contain, record,
//     continue. A poisoned workload-catalog entry surfaces the same
//     way: every cell that asks for it fails, the sweep survives.
//   - Ordered streaming aggregation. Stream delivers results to the
//     caller in job-index order as soon as each prefix completes, so
//     tables assemble incrementally yet identically to a serial run.
//
// Each sweep additionally carries a shared workload catalog
// (internal/workload/catalog): jobs that declare the same workload key
// share one immutable materialization instead of regenerating it per
// cell, and OnProgress observers receive done/failed/total counts with
// an ETA as cells complete.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dsa/internal/metrics"
	"dsa/internal/sim"
	"dsa/internal/workload/catalog"
)

// Env is the per-job environment the engine hands to Run: the cell's
// private deterministic RNG plus the sweep-wide shared workload
// catalog. Values obtained from the catalog are shared across cells and
// must be treated as immutable (see the catalog package doc).
type Env struct {
	// RNG is the job's private deterministic stream, seeded from
	// (base seed, job key) via sim.SeedFor.
	RNG *sim.RNG
	// Catalog is the sweep's shared workload catalog. Never nil for
	// jobs run by an Engine.
	Catalog *catalog.Catalog
}

// Job is one independent simulation cell. Key must be stable and
// unique within a sweep: it names the cell in failure reports and
// seeds the cell's RNG.
type Job struct {
	// Key is the cell's stable identity (e.g. "t1/loop/frames=8").
	Key string
	// Run executes the cell. The context is the sweep's cancellation
	// signal; env carries the cell's private deterministic RNG and the
	// sweep's shared workload catalog. The returned value is opaque to
	// the engine and handed to the aggregation stage.
	Run func(ctx context.Context, env Env) (interface{}, error)
	// Spec, if non-nil, describes the cell in serializable form so an
	// out-of-process executor (internal/engine/dist) can reconstruct
	// and run it in a worker process. Jobs without a Spec can only run
	// in-process; a dist pool executes them locally in the dispatcher.
	Spec *Spec
}

// Spec is the wire-serializable description of a cell: everything a
// worker process needs to rebuild the cell from its own compiled-in
// registries plus the sweep's base seed (which travels alongside in
// the protocol). The named fields carry the common axes of a sweep;
// Args holds task-specific parameters.
type Spec struct {
	// Task names the handler registered in the worker (dist.Handle).
	Task string
	// Machine optionally names the machine configuration under test.
	Machine string
	// Policy optionally names the policy under test.
	Policy string
	// Workload optionally carries the cell's workload catalog key (or
	// workload kind), making the immutable catalog the serialization
	// boundary: the worker re-materializes the workload from the key.
	Workload string
	// Args carries any further task parameters.
	Args map[string]string
}

// Result records the outcome of one job.
type Result struct {
	// Key echoes the job's key.
	Key string
	// Index is the job's position in the submitted slice.
	Index int
	// Value is what Run returned (nil on failure).
	Value interface{}
	// Err is non-nil if the job failed: Run returned an error, the
	// sweep was cancelled before the job started, or the job panicked
	// (then Err is a *PanicError and Panicked is set).
	Err error
	// Panicked reports that the job died by panic and was contained.
	Panicked bool
}

// Failed reports whether the cell must be treated as missing.
func (r Result) Failed() bool { return r.Err != nil }

// PanicError is the recorded remains of a job that panicked.
type PanicError struct {
	// Key is the panicking job's key.
	Key string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job %q panicked: %v", e.Key, e.Value)
}

// Progress is a snapshot of a sweep in flight, delivered to the
// OnProgress observer after each cell completes.
type Progress struct {
	// Total is the number of cells in the sweep.
	Total int
	// Done is the number of cells that have completed (including
	// failed and cancelled cells).
	Done int
	// Failed is the number of completed cells whose Result.Failed().
	Failed int
	// Elapsed is the wall-clock time since the sweep started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time by linear
	// extrapolation from completed cells; zero once the sweep is done.
	ETA time.Duration
	// Catalog is the sweep catalog's traffic so far — how many workload
	// requests hit the shared store, regenerated, or replayed from the
	// disk layer. Zero when the sweep's cells never touch the catalog.
	Catalog catalog.Stats
}

// String renders the snapshot the way the -progress CLI flags print
// it. The final snapshot of a sweep (Done == Total) appends the
// catalog's cache-effectiveness summary when the sweep used it.
func (p Progress) String() string {
	s := fmt.Sprintf("%d/%d cells", p.Done, p.Total)
	if p.Failed > 0 {
		s += fmt.Sprintf(", %d failed", p.Failed)
	}
	if p.Done < p.Total {
		s += fmt.Sprintf(", eta %s", p.ETA.Round(time.Millisecond))
	} else {
		s += fmt.Sprintf(", done in %s", p.Elapsed.Round(time.Millisecond))
		if !p.Catalog.Zero() {
			s += "; workloads: " + p.Catalog.Summary()
		}
	}
	return s
}

// SweepEnv is the sweep-wide environment the engine hands its
// executor: the base seed every cell's RNG derives from and the shared
// workload catalog for cells executed in this process.
type SweepEnv struct {
	// Seed is the base seed mixed with each job key by sim.SeedFor.
	Seed uint64
	// Catalog is the dispatching process's shared workload catalog.
	// Out-of-process executors use it only for cells they fall back to
	// running locally; worker processes materialize workloads from
	// their own catalogs by key.
	Catalog *catalog.Catalog
}

// Executor runs the cells of one sweep. The engine's default executor
// is the in-process goroutine pool; internal/engine/dist provides one
// that shards cells across worker processes. The contract:
//
//   - report must be called exactly once per job, with Result.Index and
//     Result.Key filled in; report is safe for concurrent use.
//   - Cells must observe the engine's per-job contract — RNG seeded
//     via sim.SeedFor(sw.Seed, job.Key), panic containment — which
//     RunJob implements for in-process execution.
//   - On cancellation every job not yet finished must still be
//     reported, with Err = ctx.Err().
//
// Aggregation order, progress accounting and result collection stay
// with the engine, so any conforming executor yields byte-identical
// sweeps.
type Executor interface {
	Execute(ctx context.Context, sw SweepEnv, jobs []Job, report func(Result))
}

// Options configures an Engine. It is the engine-level subset of
// Config, kept as a thin alias for direct engine construction; code
// that also distributes or batteries should carry a Config and
// project it here via Config.Options().
type Options struct {
	// Parallel bounds the in-process worker pool; <= 0 means
	// GOMAXPROCS. Ignored when Executor is set.
	Parallel int
	// Seed is the base seed mixed with each job key by sim.SeedFor.
	Seed uint64
	// Catalog is the sweep's shared workload catalog, handed to every
	// job as Env.Catalog. Nil means New creates a fresh one; pass
	// catalog.Disabled() to force per-cell regeneration (baselines).
	Catalog *catalog.Catalog
	// OnProgress, if non-nil, observes the sweep: it is called once
	// after each cell completes, serialized (never concurrently), with
	// a fresh Progress snapshot. It must not block for long — workers
	// wait on it.
	OnProgress func(Progress)
	// Executor, if non-nil, replaces the in-process goroutine pool —
	// the seam internal/engine/dist plugs into to run cells in worker
	// processes. Output is byte-identical either way.
	Executor Executor
}

// Engine is a reusable worker-pool sweep runner. The zero value is not
// usable; construct with New.
type Engine struct {
	parallel   int
	seed       uint64
	catalog    *catalog.Catalog
	onProgress func(Progress)
	exec       Executor
}

// New builds an engine from options.
func New(o Options) *Engine {
	p := o.Parallel
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	cat := o.Catalog
	if cat == nil {
		cat = catalog.New()
	}
	exec := o.Executor
	if exec == nil {
		exec = poolExecutor{workers: p}
	}
	return &Engine{parallel: p, seed: o.Seed, catalog: cat, onProgress: o.OnProgress, exec: exec}
}

// Parallel reports the configured worker count.
func (e *Engine) Parallel() int { return e.parallel }

// Catalog returns the sweep's shared workload catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.catalog }

// Run executes all jobs and returns their results indexed like jobs.
// It always returns a full slice: failed cells carry their error in
// place. Cancellation marks every not-yet-started job with ctx.Err().
func (e *Engine) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	e.sweep(ctx, jobs, results)
	return results
}

// Stream executes all jobs and calls emit once per job in job-index
// order, each as soon as that prefix of the sweep has completed — the
// streaming aggregation stage. emit runs on the caller's goroutine
// discipline (a single internal goroutine), so it may mutate shared
// state such as a metrics.Table without locking. Stream returns the
// full result slice after every job has been emitted.
func (e *Engine) Stream(ctx context.Context, jobs []Job, emit func(Result)) []Result {
	results := make([]Result, len(jobs))
	if emit == nil {
		e.sweep(ctx, jobs, results)
		return results
	}
	done := make(chan int, len(jobs))
	var mergeWG sync.WaitGroup
	mergeWG.Add(1)
	go func() {
		defer mergeWG.Done()
		MergeOrdered(done, func(i int) { emit(results[i]) })
	}()
	e.sweepNotify(ctx, jobs, results, done)
	close(done)
	mergeWG.Wait()
	return results
}

// sweep runs the pool with no completion notifications.
func (e *Engine) sweep(ctx context.Context, jobs []Job, results []Result) {
	e.sweepNotify(ctx, jobs, results, nil)
}

// MergeOrdered is the ordered-emission stage shared by Stream and the
// battery scheduler (internal/engine/battery): it drains completion
// indices from done and calls emit exactly once per index in ascending
// index order, buffering out-of-order completions until the next
// expected index arrives. It returns when done is closed. The sender
// must send each index exactly once; receiving an index means the
// value it guards (results[i], a table, ...) is final.
func MergeOrdered(done <-chan int, emit func(index int)) {
	ready := make(map[int]bool)
	next := 0
	for i := range done {
		ready[i] = true
		for ready[next] {
			emit(next)
			delete(ready, next)
			next++
		}
	}
}

// progressTracker serializes per-sweep progress accounting and observer
// calls across workers.
type progressTracker struct {
	mu     sync.Mutex
	start  time.Time
	total  int
	done   int
	failed int
	fn     func(Progress)
	cat    *catalog.Catalog // snapshotted into Progress.Catalog; may be nil
}

// newProgressTracker returns nil when no observer is configured, so the
// hot path stays a single nil check.
func newProgressTracker(total int, fn func(Progress)) *progressTracker {
	if fn == nil {
		return nil
	}
	return &progressTracker{start: time.Now(), total: total, fn: fn}
}

// record accounts one completed cell and delivers a snapshot.
func (p *progressTracker) record(failed bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if failed {
		p.failed++
	}
	snap := Progress{
		Total:   p.total,
		Done:    p.done,
		Failed:  p.failed,
		Elapsed: time.Since(p.start),
		Catalog: p.cat.Stats(),
	}
	if p.done > 0 && p.done < p.total {
		snap.ETA = time.Duration(float64(snap.Elapsed) / float64(p.done) * float64(p.total-p.done))
	}
	p.fn(snap)
}

// sweepNotify hands the sweep to the executor, writing results[i] for
// every job and (when done != nil) sending i after results[i] is
// final.
func (e *Engine) sweepNotify(ctx context.Context, jobs []Job, results []Result, done chan<- int) {
	if len(jobs) == 0 {
		return
	}
	prog := newProgressTracker(len(jobs), e.onProgress)
	if prog != nil {
		prog.cat = e.catalog
	}
	report := func(r Result) {
		results[r.Index] = r
		prog.record(r.Failed())
		if done != nil {
			done <- r.Index
		}
	}
	e.exec.Execute(ctx, SweepEnv{Seed: e.seed, Catalog: e.catalog}, jobs, report)
}

// poolExecutor is the default Executor: a bounded pool of goroutines
// in the dispatching process pulling cells off a shared feed.
type poolExecutor struct {
	workers int
}

func (p poolExecutor) Execute(ctx context.Context, sw SweepEnv, jobs []Job, report func(Result)) {
	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One RNG per worker, reseeded per cell: the sequence each
			// cell sees depends only on (seed, key), so reuse cannot be
			// observed — it only drops the per-cell allocation.
			var rng sim.RNG
			for i := range feed {
				report(runJobSeeded(ctx, i, jobs[i], sw.Seed, sw.Catalog, &rng))
			}
		}()
	}
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			// Mark this and all remaining jobs as cancelled; workers
			// drain nothing further.
			for j := i; j < len(jobs); j++ {
				report(Result{Key: jobs[j].Key, Index: j, Err: ctx.Err()})
			}
			close(feed)
			wg.Wait()
			return
		}
	}
	close(feed)
	wg.Wait()
}

// RunJob executes a single job in-process under the engine's standard
// per-job contract: RNG seeded from (seed, job key) via sim.SeedFor —
// never from scheduling — and panic containment, so a dying cell
// becomes a failed Result instead of sinking the sweep. Both the
// default in-process pool and the dist dispatcher's local fallback run
// cells through here.
func RunJob(ctx context.Context, index int, job Job, seed uint64, cat *catalog.Catalog) (res Result) {
	var rng sim.RNG
	return runJobSeeded(ctx, index, job, seed, cat, &rng)
}

// runJobSeeded is RunJob with a caller-owned RNG: the pool workers
// hold one generator each and reseed it per cell, so steady-state cell
// dispatch does not allocate. The sequence a cell draws depends only
// on (seed, job.Key) either way.
func runJobSeeded(ctx context.Context, index int, job Job, seed uint64, cat *catalog.Catalog, rng *sim.RNG) (res Result) {
	res = Result{Key: job.Key, Index: index}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	defer func() {
		if p := recover(); p != nil {
			stack := make([]byte, 8192)
			stack = stack[:runtime.Stack(stack, false)]
			res.Value = nil
			res.Err = &PanicError{Key: job.Key, Value: p, Stack: stack}
			res.Panicked = true
		}
	}()
	rng.Reseed(sim.SeedFor(seed, job.Key))
	res.Value, res.Err = job.Run(ctx, Env{RNG: rng, Catalog: cat})
	return res
}

// RowBatch is the value type the table-aggregation stage understands:
// the rows one cell contributes to its table, in order.
type RowBatch [][]interface{}

// FillTable is the streaming metrics-aggregation stage: it runs jobs
// whose results are RowBatch values and appends each batch to t in job
// order as the sweep progresses. A panicked cell is contained as a
// single "FAILED" row naming the cell (the sweep continues); a cell
// that returns an ordinary error aborts the table with that error
// (matching the serial experiment contract). The returned results
// slice lets callers inspect contained failures.
func (e *Engine) FillTable(ctx context.Context, t *metrics.Table, jobs []Job) ([]Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel() // abort cells not yet started; the table is lost anyway
		}
	}
	results := e.Stream(ctx, jobs, func(r Result) {
		switch {
		case r.Panicked:
			t.AddRow(failedRow(t, r)...)
		case r.Err != nil:
			fail(fmt.Errorf("cell %s: %w", r.Key, r.Err))
		default:
			batch, ok := r.Value.(RowBatch)
			if !ok {
				fail(fmt.Errorf("cell %s: result %T is not a RowBatch", r.Key, r.Value))
				return
			}
			for _, row := range batch {
				t.AddRow(row...)
			}
		}
	})
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// failedRow builds the contained-failure marker for a panicked cell,
// padded to the table's column count so consumers indexing rows by
// header position still find every column present.
func failedRow(t *metrics.Table, r Result) []interface{} {
	width := len(t.Header)
	if width < 2 {
		width = 2
	}
	row := make([]interface{}, width)
	row[0] = r.Key
	row[1] = "FAILED: " + fmt.Sprint(r.Err.(*PanicError).Value)
	for i := 2; i < width; i++ {
		row[i] = "-"
	}
	return row
}
