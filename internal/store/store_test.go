package store

import (
	"errors"
	"testing"
	"testing/quick"

	"dsa/internal/sim"
)

func newTestLevel(c *sim.Clock, cap int) *Level {
	return NewLevel(c, "core", Core, cap, 1, 0)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Core: "core", Drum: "drum", Disk: "disk", Tape: "tape", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	var c sim.Clock
	l := newTestLevel(&c, 16)
	if err := l.WriteWord(3, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := l.ReadWord(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("ReadWord = %#x, want 0xDEADBEEF", v)
	}
}

func TestReadWriteCharged(t *testing.T) {
	var c sim.Clock
	l := NewLevel(&c, "core", Core, 8, 2, 1)
	_ = l.WriteWord(0, 1)
	if c.Now() != 3 {
		t.Fatalf("after write clock = %d, want 3", c.Now())
	}
	_, _ = l.ReadWord(0)
	if c.Now() != 6 {
		t.Fatalf("after read clock = %d, want 6", c.Now())
	}
}

func TestBoundsErrors(t *testing.T) {
	var c sim.Clock
	l := newTestLevel(&c, 4)
	if _, err := l.ReadWord(4); !errors.Is(err, ErrBounds) {
		t.Errorf("ReadWord(4) err = %v, want ErrBounds", err)
	}
	if _, err := l.ReadWord(-1); !errors.Is(err, ErrBounds) {
		t.Errorf("ReadWord(-1) err = %v, want ErrBounds", err)
	}
	if err := l.WriteWord(99, 0); !errors.Is(err, ErrBounds) {
		t.Errorf("WriteWord(99) err = %v, want ErrBounds", err)
	}
	if _, err := l.PeekWord(5); !errors.Is(err, ErrBounds) {
		t.Errorf("PeekWord(5) err = %v, want ErrBounds", err)
	}
	before := c.Now()
	_, _ = l.ReadWord(100)
	if c.Now() != before {
		t.Error("out-of-bounds access charged time")
	}
}

func TestPeekFree(t *testing.T) {
	var c sim.Clock
	l := newTestLevel(&c, 4)
	_ = l.WriteWord(1, 7)
	before := c.Now()
	v, err := l.PeekWord(1)
	if err != nil || v != 7 {
		t.Fatalf("PeekWord = %d, %v, want 7, nil", v, err)
	}
	if c.Now() != before {
		t.Error("PeekWord charged time")
	}
}

func TestTransferCost(t *testing.T) {
	var c sim.Clock
	l := NewLevel(&c, "drum", Drum, 1024, 100, 2)
	if got := l.TransferCost(512); got != 100+512*2 {
		t.Fatalf("TransferCost(512) = %d, want %d", got, 100+512*2)
	}
	if got := l.TransferCost(0); got != 0 {
		t.Fatalf("TransferCost(0) = %d, want 0", got)
	}
	if got := l.TransferCost(-5); got != 0 {
		t.Fatalf("TransferCost(-5) = %d, want 0", got)
	}
}

func TestTransferCopiesData(t *testing.T) {
	var c sim.Clock
	core := NewLevel(&c, "core", Core, 64, 1, 0)
	drum := NewLevel(&c, "drum", Drum, 64, 50, 2)
	for i := 0; i < 8; i++ {
		if err := drum.WriteWord(8+i, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Transfer(drum, 8, core, 0, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		v, err := core.PeekWord(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(100+i) {
			t.Fatalf("core[%d] = %d, want %d", i, v, 100+i)
		}
	}
}

func TestTransferChargesSlowerSide(t *testing.T) {
	var c sim.Clock
	core := NewLevel(&c, "core", Core, 64, 1, 0)
	drum := NewLevel(&c, "drum", Drum, 64, 50, 2)
	before := c.Now()
	if err := Transfer(drum, 0, core, 0, 10); err != nil {
		t.Fatal(err)
	}
	want := drum.TransferCost(10) // 50 + 20 = 70 > core's 1
	if got := c.Now() - before; got != want {
		t.Fatalf("transfer cost = %d, want %d", got, want)
	}
}

func TestTransferBounds(t *testing.T) {
	var c sim.Clock
	a := newTestLevel(&c, 8)
	b := newTestLevel(&c, 8)
	if err := Transfer(a, 4, b, 0, 8); !errors.Is(err, ErrBounds) {
		t.Errorf("src overflow err = %v, want ErrBounds", err)
	}
	if err := Transfer(a, 0, b, 6, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("dst overflow err = %v, want ErrBounds", err)
	}
	if err := Transfer(a, 0, b, 0, -1); err == nil {
		t.Error("negative length transfer succeeded")
	}
}

func TestTransferStats(t *testing.T) {
	var c sim.Clock
	a := newTestLevel(&c, 32)
	b := newTestLevel(&c, 32)
	_ = Transfer(a, 0, b, 0, 16)
	if s := a.Stats(); s.Transfers != 1 || s.WordsMoved != 16 {
		t.Errorf("src stats = %+v, want 1 transfer, 16 words", s)
	}
	if s := b.Stats(); s.Transfers != 1 || s.WordsMoved != 16 {
		t.Errorf("dst stats = %+v, want 1 transfer, 16 words", s)
	}
}

func TestMoveWithin(t *testing.T) {
	var c sim.Clock
	l := newTestLevel(&c, 32)
	for i := 0; i < 4; i++ {
		_ = l.WriteWord(10+i, uint64(i+1))
	}
	if err := MoveWithin(l, 10, 2, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v, _ := l.PeekWord(2 + i)
		if v != uint64(i+1) {
			t.Fatalf("after move l[%d] = %d, want %d", 2+i, v, i+1)
		}
	}
	if err := MoveWithin(l, 30, 0, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("overflowing move err = %v, want ErrBounds", err)
	}
}

func TestMoveWithinOverlap(t *testing.T) {
	// Overlapping forward move must behave like copy (memmove).
	var c sim.Clock
	l := newTestLevel(&c, 16)
	for i := 0; i < 6; i++ {
		_ = l.WriteWord(i, uint64(i))
	}
	if err := MoveWithin(l, 0, 2, 6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v, _ := l.PeekWord(2 + i)
		if v != uint64(i) {
			t.Fatalf("overlap move l[%d] = %d, want %d", 2+i, v, i)
		}
	}
}

func TestHierarchy(t *testing.T) {
	var c sim.Clock
	core := newTestLevel(&c, 16)
	drum := NewLevel(&c, "drum", Drum, 64, 50, 2)
	h := NewHierarchy(core, drum)
	if h.Working() != core {
		t.Error("Working() is not the first level")
	}
	if h.Backing() != drum {
		t.Error("Backing() is not the second level")
	}
	solo := NewHierarchy(core)
	if solo.Backing() != nil {
		t.Error("single-level hierarchy Backing() != nil")
	}
	if h.Describe() == "" {
		t.Error("Describe() empty")
	}
}

func TestNewLevelPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLevel with capacity 0 did not panic")
		}
	}()
	var c sim.Clock
	NewLevel(&c, "x", Core, 0, 1, 0)
}

func TestNewHierarchyPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHierarchy() did not panic")
		}
	}()
	NewHierarchy()
}

func TestPropertyWriteReadAnyCell(t *testing.T) {
	var c sim.Clock
	l := newTestLevel(&c, 128)
	f := func(addr uint16, v uint64) bool {
		a := int(addr) % 128
		if err := l.WriteWord(a, v); err != nil {
			return false
		}
		got, err := l.ReadWord(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransferPreservesContent(t *testing.T) {
	f := func(seed uint64, length uint8) bool {
		var c sim.Clock
		n := int(length)%16 + 1
		a := NewLevel(&c, "a", Core, 32, 1, 0)
		b := NewLevel(&c, "b", Drum, 32, 10, 1)
		r := sim.NewRNG(seed)
		want := make([]uint64, n)
		for i := 0; i < n; i++ {
			want[i] = r.Uint64()
			if err := a.WriteWord(i, want[i]); err != nil {
				return false
			}
		}
		if err := Transfer(a, 0, b, 4, n); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			v, err := b.PeekWord(4 + i)
			if err != nil || v != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
