// Package store models the physical storage hierarchy of a 1960s
// computer system: one or more directly addressable working-storage
// levels (core) backed by slower levels (drum, disk, tape).
//
// Each level holds real data (64-bit words) and charges simulated time
// for accesses and block transfers, so the allocation systems built on
// top exercise genuine read/write paths rather than counting abstract
// events. Capacities and timings for the concrete machines are taken
// from the paper's appendix (e.g. ATLAS: 16,384-word core and a
// 98,304-word drum; IBM M44: ~200,000 words of 8 microsecond core and
// a 9 million word IBM 1301 disk file).
package store

import (
	"errors"
	"fmt"

	"dsa/internal/sim"
)

// Kind classifies a storage level by technology, which in this model
// only affects naming and reporting; timing is fully described by the
// level's AccessTime and WordTime.
type Kind int

const (
	// Core is directly addressable working storage.
	Core Kind = iota
	// Drum is a fast rotating backing store.
	Drum
	// Disk is a slower, larger backing store.
	Disk
	// Tape is sequential backing storage (Rice University computer).
	Tape
)

// String returns the conventional name of the storage technology.
func (k Kind) String() string {
	switch k {
	case Core:
		return "core"
	case Drum:
		return "drum"
	case Disk:
		return "disk"
	case Tape:
		return "tape"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrBounds reports an access outside a level's capacity.
var ErrBounds = errors.New("store: address out of bounds")

// Level is one level of the storage hierarchy. It owns its words and
// charges the shared clock for every operation.
type Level struct {
	// Name identifies the level in reports, e.g. "core" or "1301 disk".
	Name string
	// Kind is the storage technology.
	Kind Kind

	clock *sim.Clock
	words []uint64

	// AccessTime is the fixed cost charged once per operation: a single
	// core cycle for core, average rotational latency for a drum, seek
	// plus rotation for a disk.
	AccessTime sim.Time
	// WordTime is the additional cost per word transferred.
	WordTime sim.Time

	reads     int64
	writes    int64
	transfers int64
	moved     int64
}

// NewLevel creates a storage level of the given capacity in words.
func NewLevel(clock *sim.Clock, name string, kind Kind, capacity int, access, word sim.Time) *Level {
	if capacity <= 0 {
		panic("store: non-positive capacity")
	}
	return &Level{
		Name:       name,
		Kind:       kind,
		clock:      clock,
		words:      make([]uint64, capacity),
		AccessTime: access,
		WordTime:   word,
	}
}

// Capacity reports the level's size in words.
func (l *Level) Capacity() int { return len(l.words) }

// ReadWord reads one word, charging one access.
func (l *Level) ReadWord(addr int) (uint64, error) {
	if addr < 0 || addr >= len(l.words) {
		return 0, fmt.Errorf("%w: read %s[%d], capacity %d", ErrBounds, l.Name, addr, len(l.words))
	}
	l.clock.Advance(l.AccessTime + l.WordTime)
	l.reads++
	return l.words[addr], nil
}

// WriteWord writes one word, charging one access.
func (l *Level) WriteWord(addr int, v uint64) error {
	if addr < 0 || addr >= len(l.words) {
		return fmt.Errorf("%w: write %s[%d], capacity %d", ErrBounds, l.Name, addr, len(l.words))
	}
	l.clock.Advance(l.AccessTime + l.WordTime)
	l.writes++
	l.words[addr] = v
	return nil
}

// PeekWord reads a word without charging time or counting statistics.
// It is intended for tests and report generation.
func (l *Level) PeekWord(addr int) (uint64, error) {
	if addr < 0 || addr >= len(l.words) {
		return 0, fmt.Errorf("%w: peek %s[%d], capacity %d", ErrBounds, l.Name, addr, len(l.words))
	}
	return l.words[addr], nil
}

// TransferCost reports the time a block transfer of n words costs on
// this level without performing it: one access plus n word times.
func (l *Level) TransferCost(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return l.AccessTime + sim.Time(n)*l.WordTime
}

// Stats reports the operation counters accumulated so far.
func (l *Level) Stats() LevelStats {
	return LevelStats{Reads: l.reads, Writes: l.writes, Transfers: l.transfers, WordsMoved: l.moved}
}

// LevelStats are the accumulated operation counts of a Level.
type LevelStats struct {
	Reads      int64
	Writes     int64
	Transfers  int64
	WordsMoved int64
}

// Transfer copies n words from src[srcAddr...] to dst[dstAddr...],
// charging the cost of reading the slower side and writing the other:
// the transfer is dominated by the slower device, which is how channel
// transfers behaved on the surveyed machines. Both levels' transfer
// counters are incremented.
func Transfer(src *Level, srcAddr int, dst *Level, dstAddr, n int) error {
	if n < 0 {
		return fmt.Errorf("store: negative transfer length %d", n)
	}
	if srcAddr < 0 || srcAddr+n > len(src.words) {
		return fmt.Errorf("%w: transfer source %s[%d:%d], capacity %d",
			ErrBounds, src.Name, srcAddr, srcAddr+n, len(src.words))
	}
	if dstAddr < 0 || dstAddr+n > len(dst.words) {
		return fmt.Errorf("%w: transfer destination %s[%d:%d], capacity %d",
			ErrBounds, dst.Name, dstAddr, dstAddr+n, len(dst.words))
	}
	cost := src.TransferCost(n)
	if c := dst.TransferCost(n); c > cost {
		cost = c
	}
	src.clock.Advance(cost)
	copy(dst.words[dstAddr:dstAddr+n], src.words[srcAddr:srcAddr+n])
	src.transfers++
	dst.transfers++
	src.moved += int64(n)
	dst.moved += int64(n)
	return nil
}

// TransferOverlapped copies like Transfer but without advancing the
// clock: it models a transfer overlapped with program execution, as
// when anticipated pages are brought in "before [they are] needed"
// while the processor runs, or when ATLAS overlapped page arrivals
// with I/O of other programs. Transfer statistics are still counted.
func TransferOverlapped(src *Level, srcAddr int, dst *Level, dstAddr, n int) error {
	if n < 0 {
		return fmt.Errorf("store: negative transfer length %d", n)
	}
	if srcAddr < 0 || srcAddr+n > len(src.words) {
		return fmt.Errorf("%w: transfer source %s[%d:%d], capacity %d",
			ErrBounds, src.Name, srcAddr, srcAddr+n, len(src.words))
	}
	if dstAddr < 0 || dstAddr+n > len(dst.words) {
		return fmt.Errorf("%w: transfer destination %s[%d:%d], capacity %d",
			ErrBounds, dst.Name, dstAddr, dstAddr+n, len(dst.words))
	}
	copy(dst.words[dstAddr:dstAddr+n], src.words[srcAddr:srcAddr+n])
	src.transfers++
	dst.transfers++
	src.moved += int64(n)
	dst.moved += int64(n)
	return nil
}

// MoveWithin moves n words inside a single level (storage packing /
// compaction). The paper's "Special Hardware Facilities" section notes
// that some systems provided fast autonomous storage-to-storage channel
// operations for exactly this; the packing cost model lives here so
// compaction experiments charge realistic time.
func MoveWithin(l *Level, srcAddr, dstAddr, n int) error {
	if n < 0 {
		return fmt.Errorf("store: negative move length %d", n)
	}
	if srcAddr < 0 || srcAddr+n > len(l.words) {
		return fmt.Errorf("%w: move source %s[%d:%d]", ErrBounds, l.Name, srcAddr, srcAddr+n)
	}
	if dstAddr < 0 || dstAddr+n > len(l.words) {
		return fmt.Errorf("%w: move destination %s[%d:%d]", ErrBounds, l.Name, dstAddr, dstAddr+n)
	}
	l.clock.Advance(l.TransferCost(n))
	copy(l.words[dstAddr:dstAddr+n], l.words[srcAddr:srcAddr+n])
	l.transfers++
	l.moved += int64(n)
	return nil
}

// Hierarchy is an ordered set of storage levels, fastest first.
// Levels[0] is working storage; the remaining levels are backing
// storage in decreasing speed order.
type Hierarchy struct {
	Levels []*Level
}

// NewHierarchy assembles a hierarchy from levels, fastest first.
func NewHierarchy(levels ...*Level) *Hierarchy {
	if len(levels) == 0 {
		panic("store: hierarchy needs at least one level")
	}
	return &Hierarchy{Levels: levels}
}

// Working returns the working-storage (fastest) level.
func (h *Hierarchy) Working() *Level { return h.Levels[0] }

// Backing returns the primary backing level, or nil if the hierarchy
// has only working storage.
func (h *Hierarchy) Backing() *Level {
	if len(h.Levels) < 2 {
		return nil
	}
	return h.Levels[1]
}

// Describe returns a one-line-per-level summary, used by reports.
func (h *Hierarchy) Describe() string {
	s := ""
	for i, l := range h.Levels {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%s %s: %d words, access %d, per-word %d",
			l.Name, l.Kind, l.Capacity(), l.AccessTime, l.WordTime)
	}
	return s
}
