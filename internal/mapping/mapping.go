// Package mapping implements the address-mapping hardware of the
// paper: the mechanism that provides *artificial contiguity* (its third
// basic characteristic) by interposing a mapping function "in the path
// between the specification of a name by a program and the accessing by
// absolute address of the corresponding location".
//
// Three mechanisms are provided:
//
//   - PageTable — the simple one-level scheme of Figure 2: the most
//     significant bits of the name index a table of block addresses;
//   - TwoLevel — the segment-table/page-table scheme of Figure 4
//     (MULTICS, IBM 360/67), with per-segment extents and two table
//     lookups per reference;
//   - TLB — the small associative memory of the paper's "reduction of
//     addressing overhead" facility (8+1 registers on the 360/67, 44
//     words on the B8500) that holds recently used page locations so
//     the mapping tables are usually bypassed.
//
// Every table lookup charges the simulation clock, so the addressing
// overhead the paper worries about ("the cost in extra addressing time
// ... would often be unacceptable" without associative memories) is
// directly measurable in experiment F4.
package mapping

import (
	"errors"
	"fmt"

	"dsa/internal/addr"
	"dsa/internal/sim"
)

// ErrFault is the sentinel wrapped by PageFault and SegmentFault; the
// paging engine matches it with errors.As on the concrete types.
var ErrFault = errors.New("mapping: fault")

// PageFault reports a reference to a page not currently in a frame —
// the trap "at the heart of the demand paging strategy".
type PageFault struct {
	Seg  addr.SegID
	Page uint64
}

// Error implements error.
func (e *PageFault) Error() string {
	return fmt.Sprintf("page fault: segment %d page %d", e.Seg, e.Page)
}

// Unwrap lets errors.Is(err, ErrFault) succeed.
func (e *PageFault) Unwrap() error { return ErrFault }

// SegmentFault reports a reference to a segment with no page table (or
// descriptor) in working storage.
type SegmentFault struct {
	Seg addr.SegID
}

// Error implements error.
func (e *SegmentFault) Error() string {
	return fmt.Sprintf("segment fault: segment %d", e.Seg)
}

// Unwrap lets errors.Is(err, ErrFault) succeed.
func (e *SegmentFault) Unwrap() error { return ErrFault }

// Entry is a page-table entry: the current frame of the page plus the
// hardware sensors ("automatic recording of the fact of use or of
// modification of the contents of each page frame").
type Entry struct {
	Frame    int
	Present  bool
	Use      bool
	Modified bool
}

// PageTable is the simple mapping scheme of Figure 2: a name is split
// into (block number, word-within-block) and the block number indexes a
// table of block addresses.
type PageTable struct {
	clock *sim.Clock
	// PageSize is the uniform unit of allocation in words.
	PageSize uint64
	// LookupCost is charged per table access; typically one core cycle.
	LookupCost sim.Time

	entries []Entry
	lookups int64
	faults  int64
	// fault is reused across Translate calls so the demand-paging hot
	// path does not allocate per trap. Callers consume the fault before
	// retrying the translation, so the reuse is invisible to them.
	fault PageFault
}

// NewPageTable creates a table covering `pages` pages of pageSize
// words each.
func NewPageTable(clock *sim.Clock, pages int, pageSize uint64, lookupCost sim.Time) *PageTable {
	if pages <= 0 || pageSize == 0 {
		panic("mapping: bad page table shape")
	}
	return &PageTable{
		clock:      clock,
		PageSize:   pageSize,
		LookupCost: lookupCost,
		entries:    make([]Entry, pages),
	}
}

// Pages reports the number of entries.
func (t *PageTable) Pages() int { return len(t.entries) }

// Translate maps a name to an absolute address, charging one lookup.
// A reference to an absent page returns a *PageFault; the caller
// resolves it and retries.
func (t *PageTable) Translate(n addr.Name, write bool) (addr.Address, error) {
	t.clock.Advance(t.LookupCost)
	t.lookups++
	page := uint64(n) / t.PageSize
	offset := uint64(n) % t.PageSize
	if page >= uint64(len(t.entries)) {
		return 0, fmt.Errorf("%w: name %d beyond %d pages", addr.ErrLimit, n, len(t.entries))
	}
	e := &t.entries[page]
	if !e.Present {
		t.faults++
		t.fault = PageFault{Page: page}
		return 0, &t.fault
	}
	e.Use = true
	if write {
		e.Modified = true
	}
	return addr.Address(uint64(e.Frame)*t.PageSize + offset), nil
}

// SetEntry installs page → frame.
func (t *PageTable) SetEntry(page uint64, frame int) error {
	if page >= uint64(len(t.entries)) {
		return fmt.Errorf("%w: page %d beyond %d", addr.ErrLimit, page, len(t.entries))
	}
	t.entries[page] = Entry{Frame: frame, Present: true}
	return nil
}

// Invalidate removes the mapping for page and returns the entry as it
// stood, so the caller can inspect the modified sensor (a clean page
// need not be written back).
func (t *PageTable) Invalidate(page uint64) (Entry, error) {
	if page >= uint64(len(t.entries)) {
		return Entry{}, fmt.Errorf("%w: page %d beyond %d", addr.ErrLimit, page, len(t.entries))
	}
	e := t.entries[page]
	t.entries[page] = Entry{}
	return e, nil
}

// Entry returns a copy of the entry for page.
func (t *PageTable) Entry(page uint64) (Entry, error) {
	if page >= uint64(len(t.entries)) {
		return Entry{}, fmt.Errorf("%w: page %d beyond %d", addr.ErrLimit, page, len(t.entries))
	}
	return t.entries[page], nil
}

// ClearUse clears every use sensor (periodic interrogation by a
// replacement strategy) and returns how many were set.
func (t *PageTable) ClearUse() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Use {
			n++
			t.entries[i].Use = false
		}
	}
	return n
}

// Stats reports lookup and fault counts.
func (t *PageTable) Stats() (lookups, faults int64) { return t.lookups, t.faults }
