package mapping

import (
	"errors"
	"testing"
	"testing/quick"

	"dsa/internal/addr"
	"dsa/internal/sim"
)

func TestPageTableTranslate(t *testing.T) {
	var c sim.Clock
	pt := NewPageTable(&c, 8, 512, 1)
	if err := pt.SetEntry(2, 5); err != nil {
		t.Fatal(err)
	}
	a, err := pt.Translate(2*512+17, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != 5*512+17 {
		t.Fatalf("Translate = %d, want %d", a, 5*512+17)
	}
}

func TestPageTableFault(t *testing.T) {
	var c sim.Clock
	pt := NewPageTable(&c, 8, 512, 1)
	_, err := pt.Translate(100, false)
	var pf *PageFault
	if !errors.As(err, &pf) {
		t.Fatalf("err = %v, want *PageFault", err)
	}
	if pf.Page != 0 {
		t.Errorf("fault page = %d, want 0", pf.Page)
	}
	if !errors.Is(err, ErrFault) {
		t.Error("PageFault does not unwrap to ErrFault")
	}
	_, faults := pt.Stats()
	if faults != 1 {
		t.Errorf("faults = %d, want 1", faults)
	}
}

func TestPageTableLimit(t *testing.T) {
	var c sim.Clock
	pt := NewPageTable(&c, 4, 256, 1)
	if _, err := pt.Translate(4*256, false); !errors.Is(err, addr.ErrLimit) {
		t.Errorf("out-of-range err = %v, want ErrLimit", err)
	}
	if err := pt.SetEntry(4, 0); !errors.Is(err, addr.ErrLimit) {
		t.Errorf("SetEntry(4) err = %v, want ErrLimit", err)
	}
	if _, err := pt.Invalidate(9); !errors.Is(err, addr.ErrLimit) {
		t.Errorf("Invalidate(9) err = %v, want ErrLimit", err)
	}
	if _, err := pt.Entry(9); !errors.Is(err, addr.ErrLimit) {
		t.Errorf("Entry(9) err = %v, want ErrLimit", err)
	}
}

func TestPageTableSensors(t *testing.T) {
	var c sim.Clock
	pt := NewPageTable(&c, 4, 64, 1)
	_ = pt.SetEntry(1, 0)
	_, _ = pt.Translate(64, false)
	e, _ := pt.Entry(1)
	if !e.Use || e.Modified {
		t.Errorf("after read: entry = %+v, want Use, clean", e)
	}
	_, _ = pt.Translate(64, true)
	e, _ = pt.Entry(1)
	if !e.Modified {
		t.Error("write did not set Modified")
	}
	if n := pt.ClearUse(); n != 1 {
		t.Errorf("ClearUse = %d, want 1", n)
	}
	e, _ = pt.Entry(1)
	if e.Use {
		t.Error("use bit survived ClearUse")
	}
	if !e.Modified {
		t.Error("ClearUse must not clear Modified")
	}
}

func TestPageTableInvalidateReturnsEntry(t *testing.T) {
	var c sim.Clock
	pt := NewPageTable(&c, 2, 64, 1)
	_ = pt.SetEntry(0, 3)
	_, _ = pt.Translate(0, true)
	e, err := pt.Invalidate(0)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Present || !e.Modified || e.Frame != 3 {
		t.Errorf("invalidated entry = %+v", e)
	}
	if _, err := pt.Translate(0, false); err == nil {
		t.Error("translate after invalidate succeeded")
	}
}

func TestPageTableChargesLookup(t *testing.T) {
	var c sim.Clock
	pt := NewPageTable(&c, 2, 64, 3)
	_ = pt.SetEntry(0, 0)
	before := c.Now()
	_, _ = pt.Translate(5, false)
	if got := c.Now() - before; got != 3 {
		t.Errorf("lookup charged %d, want 3", got)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(2)
	k1 := TLBKey{Seg: 1, Page: 0}
	k2 := TLBKey{Seg: 1, Page: 1}
	k3 := TLBKey{Seg: 2, Page: 0}
	if _, ok := tlb.Lookup(k1); ok {
		t.Fatal("hit on empty TLB")
	}
	tlb.Install(k1, 10)
	tlb.Install(k2, 11)
	if f, ok := tlb.Lookup(k1); !ok || f != 10 {
		t.Fatalf("Lookup(k1) = %d, %v", f, ok)
	}
	// Install third entry: k2 is LRU (k1 just used) and must go.
	tlb.Install(k3, 12)
	if _, ok := tlb.Lookup(k2); ok {
		t.Error("k2 survived LRU eviction")
	}
	if f, ok := tlb.Lookup(k3); !ok || f != 12 {
		t.Errorf("Lookup(k3) = %d, %v", f, ok)
	}
	if tlb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tlb.Len())
	}
}

func TestTLBZeroCapacity(t *testing.T) {
	tlb := NewTLB(0)
	tlb.Install(TLBKey{Seg: 0, Page: 0}, 1)
	if _, ok := tlb.Lookup(TLBKey{Seg: 0, Page: 0}); ok {
		t.Error("zero-capacity TLB hit")
	}
	if tlb.HitRatio() != 0 {
		t.Error("HitRatio != 0")
	}
}

func TestTLBInvalidateAndFlush(t *testing.T) {
	tlb := NewTLB(4)
	k := TLBKey{Seg: 3, Page: 7}
	tlb.Install(k, 9)
	tlb.InvalidatePage(k)
	if _, ok := tlb.Lookup(k); ok {
		t.Error("hit after invalidate")
	}
	tlb.Install(k, 9)
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Error("entries after flush")
	}
}

func TestTLBHitRatio(t *testing.T) {
	tlb := NewTLB(4)
	k := TLBKey{Seg: 0, Page: 0}
	tlb.Lookup(k) // miss
	tlb.Install(k, 0)
	tlb.Lookup(k) // hit
	tlb.Lookup(k) // hit
	if got := tlb.HitRatio(); got != 2.0/3.0 {
		t.Errorf("HitRatio = %g, want 2/3", got)
	}
}

func TestTLBNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTLB(-1)
}

func TestTwoLevelTranslate(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 16, 8, 1)
	pt, err := m.Establish(3, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	_ = pt.SetEntry(1, 7)
	a, err := m.Translate(3, 512+20, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != 7*512+20 {
		t.Fatalf("Translate = %d, want %d", a, 7*512+20)
	}
}

func TestTwoLevelSegmentFault(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 4, 0, 1)
	_, err := m.Translate(2, 0, false)
	var sf *SegmentFault
	if !errors.As(err, &sf) || sf.Seg != 2 {
		t.Fatalf("err = %v, want SegmentFault{2}", err)
	}
	if !errors.Is(err, ErrFault) {
		t.Error("SegmentFault does not unwrap to ErrFault")
	}
	_, faults := m.Stats()
	if faults != 1 {
		t.Errorf("segFaults = %d, want 1", faults)
	}
}

func TestTwoLevelPageFaultCarriesSegment(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 4, 0, 1)
	_, _ = m.Establish(1, 1024, 256)
	_, err := m.Translate(1, 300, false)
	var pf *PageFault
	if !errors.As(err, &pf) {
		t.Fatalf("err = %v, want *PageFault", err)
	}
	if pf.Seg != 1 || pf.Page != 1 {
		t.Errorf("fault = %+v, want seg 1 page 1", pf)
	}
}

func TestTwoLevelExtentCheck(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 4, 0, 1)
	_, _ = m.Establish(0, 100, 256)
	if _, err := m.Translate(0, 100, false); !errors.Is(err, addr.ErrLimit) {
		t.Errorf("subscript violation err = %v, want ErrLimit", err)
	}
	if _, err := m.Translate(9, 0, false); !errors.Is(err, addr.ErrLimit) {
		t.Errorf("bad segment err = %v, want ErrLimit", err)
	}
}

func TestTwoLevelTLBShortCircuit(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 4, 8, 5)
	pt, _ := m.Establish(0, 1024, 256)
	_ = pt.SetEntry(0, 2)
	// First access: TLB miss → 2 table lookups (segment + page) = 10.
	before := c.Now()
	_, err := m.Translate(0, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	cold := c.Now() - before
	// Second access same page: TLB hit → no table lookups.
	before = c.Now()
	_, _ = m.Translate(0, 11, false)
	warm := c.Now() - before
	if cold != 10 {
		t.Errorf("cold access cost %d, want 10", cold)
	}
	if warm != 0 {
		t.Errorf("warm access cost %d, want 0", warm)
	}
	if m.TLB().HitRatio() != 0.5 {
		t.Errorf("hit ratio = %g, want 0.5", m.TLB().HitRatio())
	}
}

func TestTwoLevelTLBHitSetsSensors(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 2, 4, 1)
	pt, _ := m.Establish(0, 256, 256)
	_ = pt.SetEntry(0, 0)
	_, _ = m.Translate(0, 0, false) // miss, installs
	pt.ClearUse()
	_, _ = m.Translate(0, 1, true) // TLB hit, write
	e, _ := pt.Entry(0)
	if !e.Use || !e.Modified {
		t.Errorf("sensors after TLB-hit write = %+v", e)
	}
}

func TestTwoLevelRetractInvalidatesTLB(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 2, 4, 1)
	pt, _ := m.Establish(0, 256, 256)
	_ = pt.SetEntry(0, 1)
	_, _ = m.Translate(0, 0, false)
	m.Retract(0)
	if _, err := m.Translate(0, 0, false); err == nil {
		t.Fatal("translate after retract succeeded")
	}
	e, err := m.Segment(0)
	if err != nil || e.Present {
		t.Errorf("segment still present after retract: %+v, %v", e, err)
	}
}

func TestTwoLevelSetExtentGrows(t *testing.T) {
	var c sim.Clock
	m := NewTwoLevel(&c, 2, 0, 1)
	pt, _ := m.Establish(0, 256, 256)
	_ = pt.SetEntry(0, 4)
	if err := m.SetExtent(0, 1000); err != nil {
		t.Fatal(err)
	}
	// Old mapping preserved.
	a, err := m.Translate(0, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != 4*256+5 {
		t.Errorf("Translate = %d, want %d", a, 4*256+5)
	}
	// New extent reachable (faults rather than limit-traps).
	_, err = m.Translate(0, 900, false)
	var pf *PageFault
	if !errors.As(err, &pf) || pf.Page != 3 {
		t.Errorf("err = %v, want page fault on page 3", err)
	}
	// Shrinking tightens the bound.
	if err := m.SetExtent(0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(0, 200, false); !errors.Is(err, addr.ErrLimit) {
		t.Errorf("beyond shrunk extent err = %v, want ErrLimit", err)
	}
	// SetExtent on absent segment faults.
	if err := m.SetExtent(1, 10); err == nil {
		t.Error("SetExtent on absent segment succeeded")
	}
}

func TestTLBHitRatioImprovesWithCapacity(t *testing.T) {
	// The F4 shape in miniature: bigger associative memories catch more
	// of a locality-bearing reference stream.
	run := func(tlbSize int) float64 {
		var c sim.Clock
		m := NewTwoLevel(&c, 8, tlbSize, 1)
		for s := addr.SegID(0); s < 8; s++ {
			pt, _ := m.Establish(s, 4096, 512)
			for p := uint64(0); p < 8; p++ {
				_ = pt.SetEntry(p, int(s)*8+int(p))
			}
		}
		rng := sim.NewRNG(77)
		for i := 0; i < 20000; i++ {
			var seg addr.SegID
			var name addr.Name
			if rng.Float64() < 0.9 {
				seg = addr.SegID(rng.Intn(2))
				name = addr.Name(rng.Intn(1024))
			} else {
				seg = addr.SegID(rng.Intn(8))
				name = addr.Name(rng.Intn(4096))
			}
			if _, err := m.Translate(seg, name, false); err != nil {
				t.Fatal(err)
			}
		}
		return m.TLB().HitRatio()
	}
	small := run(2)
	medium := run(8)
	large := run(44)
	if !(small < medium && medium < large) {
		t.Errorf("hit ratios not increasing: %g, %g, %g", small, medium, large)
	}
	if large < 0.9 {
		t.Errorf("44-register TLB hit ratio %g, want > 0.9", large)
	}
}

func TestPropertyTranslationPreservesOffset(t *testing.T) {
	var c sim.Clock
	pt := NewPageTable(&c, 64, 128, 0)
	perm := sim.NewRNG(5).Perm(64)
	for p := 0; p < 64; p++ {
		_ = pt.SetEntry(uint64(p), perm[p])
	}
	f := func(n uint16) bool {
		name := addr.Name(n) % (64 * 128)
		a, err := pt.Translate(name, false)
		if err != nil {
			return false
		}
		// Offset within page preserved; frame is the permuted page.
		if uint64(a)%128 != uint64(name)%128 {
			return false
		}
		return uint64(a)/128 == uint64(perm[uint64(name)/128])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
