package mapping

import (
	"fmt"

	"dsa/internal/addr"
	"dsa/internal/sim"
)

// SegEntry is a segment-table entry of the Figure 4 scheme: it locates
// the page table of the segment and carries the segment's extent so
// that "the checking of illegal subscripting can be performed
// automatically".
type SegEntry struct {
	// Table is the segment's page table; nil while the segment is not
	// established in working storage.
	Table *PageTable
	// Extent is the segment length in words; names beyond it trap.
	Extent addr.Name
	// Present gates the whole segment.
	Present bool
}

// TwoLevel is the two-level mapping scheme of Figure 4: a logical
// address (segment, page, word) is resolved through a segment table to
// a page table to a frame, with a small associative memory short-
// circuiting both lookups for recently used pages.
type TwoLevel struct {
	clock *sim.Clock
	// LookupCost is charged per table level actually consulted.
	LookupCost sim.Time
	// TLBCost is charged per associative probe (usually 0: the probe
	// overlaps the storage access in hardware).
	TLBCost sim.Time

	segs []SegEntry
	tlb  *TLB

	lookups   int64
	segFaults int64
}

// NewTwoLevel creates a two-level mapper for up to maxSegs segments
// with an associative memory of tlbSize registers.
func NewTwoLevel(clock *sim.Clock, maxSegs, tlbSize int, lookupCost sim.Time) *TwoLevel {
	if maxSegs <= 0 {
		panic("mapping: non-positive segment count")
	}
	return &TwoLevel{
		clock:      clock,
		LookupCost: lookupCost,
		segs:       make([]SegEntry, maxSegs),
		tlb:        NewTLB(tlbSize),
	}
}

// TLB exposes the associative memory for statistics and invalidation.
func (m *TwoLevel) TLB() *TLB { return m.tlb }

// MaxSegments reports the segment-table capacity.
func (m *TwoLevel) MaxSegments() int { return len(m.segs) }

// Establish installs a segment of the given extent with a fresh page
// table of the given page size (all pages absent).
func (m *TwoLevel) Establish(seg addr.SegID, extent addr.Name, pageSize uint64) (*PageTable, error) {
	if int(seg) >= len(m.segs) {
		return nil, fmt.Errorf("%w: segment %d beyond table of %d", addr.ErrLimit, seg, len(m.segs))
	}
	pages := int((uint64(extent) + pageSize - 1) / pageSize)
	if pages == 0 {
		pages = 1
	}
	pt := NewPageTable(m.clock, pages, pageSize, m.LookupCost)
	m.segs[seg] = SegEntry{Table: pt, Extent: extent, Present: true}
	return pt, nil
}

// Retract removes a segment from the table (segment destroyed or paged
// out wholesale) and flushes its TLB entries.
func (m *TwoLevel) Retract(seg addr.SegID) {
	if int(seg) < len(m.segs) {
		if e := m.segs[seg]; e.Table != nil {
			for p := uint64(0); p < uint64(e.Table.Pages()); p++ {
				m.tlb.InvalidatePage(TLBKey{Seg: seg, Page: p})
			}
		}
		m.segs[seg] = SegEntry{}
	}
}

// Segment returns the segment entry.
func (m *TwoLevel) Segment(seg addr.SegID) (SegEntry, error) {
	if int(seg) >= len(m.segs) {
		return SegEntry{}, fmt.Errorf("%w: segment %d beyond %d", addr.ErrLimit, seg, len(m.segs))
	}
	return m.segs[seg], nil
}

// SetExtent changes a segment's extent (dynamic segments "can be varied
// during execution by special program directives"). Growing beyond the
// page table's coverage re-establishes a larger table, preserving
// present entries.
func (m *TwoLevel) SetExtent(seg addr.SegID, extent addr.Name) error {
	if int(seg) >= len(m.segs) {
		return fmt.Errorf("%w: segment %d beyond %d", addr.ErrLimit, seg, len(m.segs))
	}
	e := &m.segs[seg]
	if !e.Present || e.Table == nil {
		return &SegmentFault{Seg: seg}
	}
	pageSize := e.Table.PageSize
	pages := int((uint64(extent) + pageSize - 1) / pageSize)
	if pages > e.Table.Pages() {
		nt := NewPageTable(m.clock, pages, pageSize, m.LookupCost)
		copy(nt.entries, e.Table.entries)
		e.Table = nt
	}
	e.Extent = extent
	return nil
}

// Translate resolves (segment, word-within-segment) to an absolute
// address. The TLB is probed first; on a hit both table lookups are
// skipped. Traps: addr.ErrLimit for subscript violations, *SegmentFault
// and *PageFault for absences.
func (m *TwoLevel) Translate(seg addr.SegID, n addr.Name, write bool) (addr.Address, error) {
	if int(seg) >= len(m.segs) {
		return 0, fmt.Errorf("%w: segment %d beyond %d", addr.ErrLimit, seg, len(m.segs))
	}
	e := &m.segs[seg]
	if !e.Present || e.Table == nil {
		m.segFaults++
		return 0, &SegmentFault{Seg: seg}
	}
	if n >= e.Extent {
		return 0, fmt.Errorf("%w: name %d, segment %d extent %d", addr.ErrLimit, n, seg, e.Extent)
	}
	pageSize := e.Table.PageSize
	page := uint64(n) / pageSize
	offset := uint64(n) % pageSize

	m.clock.Advance(m.TLBCost)
	if frame, ok := m.tlb.Lookup(TLBKey{Seg: seg, Page: page}); ok {
		// Keep sensors current even on the fast path.
		pe := &e.Table.entries[page]
		pe.Use = true
		if write {
			pe.Modified = true
		}
		return addr.Address(uint64(frame)*pageSize + offset), nil
	}

	// Segment-table lookup (already validated) costs one access...
	m.clock.Advance(m.LookupCost)
	m.lookups++
	// ...then the page-table lookup.
	a, err := e.Table.Translate(n, write)
	if err != nil {
		if pf, ok := err.(*PageFault); ok {
			pf.Seg = seg
		}
		return 0, err
	}
	pe, _ := e.Table.Entry(page)
	m.tlb.Install(TLBKey{Seg: seg, Page: page}, pe.Frame)
	return a, nil
}

// Stats reports segment-table lookups and segment faults; page-table
// statistics live on the per-segment tables.
func (m *TwoLevel) Stats() (lookups, segFaults int64) { return m.lookups, m.segFaults }
