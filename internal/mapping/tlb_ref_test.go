package mapping

import (
	"fmt"
	"testing"

	"dsa/internal/addr"
	"dsa/internal/sim"
)

// refTLB is the seed associative memory: frame and recency-stamp maps,
// eviction by scanning every register for the minimum stamp. The
// stamps are unique, so min-stamp eviction is strict LRU — which is
// what the intrusive recency list must reproduce exactly.
type refTLB struct {
	capacity int
	frames   map[TLBKey]int
	stamp    map[TLBKey]uint64
	clock    uint64
	hits     int64
	misses   int64
}

func newRefTLB(capacity int) *refTLB {
	return &refTLB{
		capacity: capacity,
		frames:   make(map[TLBKey]int, capacity),
		stamp:    make(map[TLBKey]uint64, capacity),
	}
}

func (t *refTLB) lookup(k TLBKey) (int, bool) {
	f, ok := t.frames[k]
	if ok {
		t.hits++
		t.clock++
		t.stamp[k] = t.clock
		return f, true
	}
	t.misses++
	return 0, false
}

func (t *refTLB) install(k TLBKey, frame int) {
	if t.capacity == 0 {
		return
	}
	if _, ok := t.frames[k]; !ok && len(t.frames) >= t.capacity {
		var victim TLBKey
		var oldest uint64
		first := true
		for key, s := range t.stamp {
			if first || s < oldest {
				victim = key
				oldest = s
				first = false
			}
		}
		delete(t.frames, victim)
		delete(t.stamp, victim)
	}
	t.frames[k] = frame
	t.clock++
	t.stamp[k] = t.clock
}

func (t *refTLB) invalidate(k TLBKey) {
	delete(t.frames, k)
	delete(t.stamp, k)
}

func (t *refTLB) flush() {
	clear(t.frames)
	clear(t.stamp)
}

// TestTLBMatchesReference drives the recency-list TLB and the seed
// stamp-scan implementation through identical random workloads and
// requires identical lookup results, statistics, and (critically)
// identical eviction decisions throughout.
func TestTLBMatchesReference(t *testing.T) {
	for _, capacity := range []int{0, 1, 8, 44} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			tlb := NewTLB(capacity)
			ref := newRefTLB(capacity)
			rng := sim.NewRNG(uint64(capacity) + 17)
			key := func() TLBKey {
				return TLBKey{
					Seg:  addr.SegID(rng.Intn(4)),
					Page: uint64(rng.Intn(3 * (capacity + 2))),
				}
			}
			for step := 0; step < 8000; step++ {
				switch op := rng.Intn(20); {
				case op < 10:
					k := key()
					gf, gok := tlb.Lookup(k)
					wf, wok := ref.lookup(k)
					if gok != wok || (gok && gf != wf) {
						t.Fatalf("step %d: Lookup(%v) = (%d,%v), reference (%d,%v)",
							step, k, gf, gok, wf, wok)
					}
				case op < 18:
					k := key()
					f := rng.Intn(256)
					tlb.Install(k, f)
					ref.install(k, f)
				case op < 19:
					k := key()
					tlb.InvalidatePage(k)
					ref.invalidate(k)
				default:
					if rng.Intn(10) == 0 { // flushes are rare
						tlb.Flush()
						ref.flush()
					}
				}
				if tlb.Len() != len(ref.frames) {
					t.Fatalf("step %d: Len = %d, reference %d", step, tlb.Len(), len(ref.frames))
				}
				h, m := tlb.Stats()
				if h != ref.hits || m != ref.misses {
					t.Fatalf("step %d: stats (%d,%d), reference (%d,%d)", step, h, m, ref.hits, ref.misses)
				}
			}
			// The register contents themselves must agree at the end.
			for k, f := range ref.frames {
				if got, ok := tlb.Lookup(k); !ok || got != f {
					t.Fatalf("final: entry %v = (%d,%v), reference %d", k, got, ok, f)
				}
			}
		})
	}
}

// TestTLBSteadyStateAllocs pins the install/evict hot path: once the
// entry pool is primed, the miss→install→evict churn of a sweep must
// not allocate.
func TestTLBSteadyStateAllocs(t *testing.T) {
	tlb := NewTLB(8)
	page := uint64(0)
	cycle := func() {
		for i := 0; i < 16; i++ {
			page++
			k := TLBKey{Seg: 1, Page: page % 24}
			if _, ok := tlb.Lookup(k); !ok {
				tlb.Install(k, int(page)%32)
			}
		}
	}
	cycle() // warm: fills the registers and primes the pool
	cycle()
	if avg := testing.AllocsPerRun(100, cycle); avg > 0 {
		t.Fatalf("TLB lookup/install/evict cycle allocates %.1f times per run", avg)
	}
}
