package mapping

import "dsa/internal/addr"

// TLBKey identifies a (segment, page) pair in the associative memory.
type TLBKey struct {
	Seg  addr.SegID
	Page uint64
}

// TLB models the small associative memory "in which recently-used
// segment and/or page locations are kept": 8+1 registers on the IBM
// 360/67, 44 thin-film words on the B8500. Hits bypass the mapping
// tables entirely; replacement within the TLB is least-recently-used,
// which content-addressable hardware of the era approximated with
// usage flip-flops.
type TLB struct {
	capacity int
	frames   map[TLBKey]int
	stamp    map[TLBKey]uint64
	n        uint64
	hits     int64
	misses   int64
}

// NewTLB creates an associative memory of the given capacity.
// Capacity 0 is legal and models a machine without one: every lookup
// misses.
func NewTLB(capacity int) *TLB {
	if capacity < 0 {
		panic("mapping: negative TLB capacity")
	}
	return &TLB{
		capacity: capacity,
		frames:   make(map[TLBKey]int),
		stamp:    make(map[TLBKey]uint64),
	}
}

// Capacity reports the number of associative registers.
func (t *TLB) Capacity() int { return t.capacity }

// Lookup probes the associative memory.
func (t *TLB) Lookup(k TLBKey) (frame int, ok bool) {
	f, ok := t.frames[k]
	if ok {
		t.hits++
		t.n++
		t.stamp[k] = t.n
		return f, true
	}
	t.misses++
	return 0, false
}

// Install records a translation, evicting the least recently used
// entry if the memory is full.
func (t *TLB) Install(k TLBKey, frame int) {
	if t.capacity == 0 {
		return
	}
	if _, ok := t.frames[k]; !ok && len(t.frames) >= t.capacity {
		var victim TLBKey
		var oldest uint64
		first := true
		for key, s := range t.stamp {
			if first || s < oldest {
				victim, oldest = key, s
				first = false
			}
		}
		delete(t.frames, victim)
		delete(t.stamp, victim)
	}
	t.n++
	t.frames[k] = frame
	t.stamp[k] = t.n
}

// InvalidatePage removes any entry for the (segment, page) pair; it
// must be called when a page is evicted from its frame.
func (t *TLB) InvalidatePage(k TLBKey) {
	delete(t.frames, k)
	delete(t.stamp, k)
}

// Flush empties the associative memory (e.g. on program switch).
func (t *TLB) Flush() {
	t.frames = make(map[TLBKey]int)
	t.stamp = make(map[TLBKey]uint64)
}

// Len reports the number of valid entries.
func (t *TLB) Len() int { return len(t.frames) }

// Stats reports hit and miss counts.
func (t *TLB) Stats() (hits, misses int64) { return t.hits, t.misses }

// HitRatio reports hits / (hits+misses), 0 when unused.
func (t *TLB) HitRatio() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}
