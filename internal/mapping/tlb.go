package mapping

import "dsa/internal/addr"

// TLBKey identifies a (segment, page) pair in the associative memory.
type TLBKey struct {
	Seg  addr.SegID
	Page uint64
}

// tlbEntry is one associative register, threaded on an intrusive
// recency list (head = most recently used). Entries are recycled
// through a free list so steady-state install/evict traffic does not
// allocate.
type tlbEntry struct {
	key        TLBKey
	frame      int
	prev, next *tlbEntry
}

// TLB models the small associative memory "in which recently-used
// segment and/or page locations are kept": 8+1 registers on the IBM
// 360/67, 44 thin-film words on the B8500. Hits bypass the mapping
// tables entirely; replacement within the TLB is least-recently-used,
// which content-addressable hardware of the era approximated with
// usage flip-flops. The model keeps the registers on an intrusive
// recency list, so installing into a full memory evicts the list tail
// in O(1) instead of scanning every register for the oldest stamp —
// the victim (strict LRU, which unique stamps made deterministic) is
// identical.
type TLB struct {
	capacity   int
	entries    map[TLBKey]*tlbEntry
	head, tail *tlbEntry // recency order: head = most recent
	free       *tlbEntry // recycled entries, chained through next
	hits       int64
	misses     int64
}

// NewTLB creates an associative memory of the given capacity.
// Capacity 0 is legal and models a machine without one: every lookup
// misses.
func NewTLB(capacity int) *TLB {
	if capacity < 0 {
		panic("mapping: negative TLB capacity")
	}
	return &TLB{
		capacity: capacity,
		entries:  make(map[TLBKey]*tlbEntry, capacity),
	}
}

// Capacity reports the number of associative registers.
func (t *TLB) Capacity() int { return t.capacity }

// moveToFront makes e the most recently used entry.
func (t *TLB) moveToFront(e *tlbEntry) {
	if t.head == e {
		return
	}
	// Unlink (e is on the list and not the head, so e.prev != nil).
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
	// Relink at the head.
	e.prev = nil
	e.next = t.head
	t.head.prev = e
	t.head = e
}

// pushFront links a detached entry at the head of the recency list.
func (t *TLB) pushFront(e *tlbEntry) {
	e.prev = nil
	e.next = t.head
	if t.head != nil {
		t.head.prev = e
	} else {
		t.tail = e
	}
	t.head = e
}

// unlink removes e from the recency list.
func (t *TLB) unlink(e *tlbEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
}

// release recycles a detached entry.
func (t *TLB) release(e *tlbEntry) {
	*e = tlbEntry{next: t.free}
	t.free = e
}

// Lookup probes the associative memory.
func (t *TLB) Lookup(k TLBKey) (frame int, ok bool) {
	e, ok := t.entries[k]
	if ok {
		t.hits++
		t.moveToFront(e)
		return e.frame, true
	}
	t.misses++
	return 0, false
}

// Install records a translation, evicting the least recently used
// entry if the memory is full.
func (t *TLB) Install(k TLBKey, frame int) {
	if t.capacity == 0 {
		return
	}
	if e, ok := t.entries[k]; ok {
		e.frame = frame
		t.moveToFront(e)
		return
	}
	if len(t.entries) >= t.capacity {
		victim := t.tail
		t.unlink(victim)
		delete(t.entries, victim.key)
		t.release(victim)
	}
	e := t.free
	if e == nil {
		e = &tlbEntry{}
	} else {
		t.free = e.next
		*e = tlbEntry{}
	}
	e.key = k
	e.frame = frame
	t.pushFront(e)
	t.entries[k] = e
}

// InvalidatePage removes any entry for the (segment, page) pair; it
// must be called when a page is evicted from its frame.
func (t *TLB) InvalidatePage(k TLBKey) {
	if e, ok := t.entries[k]; ok {
		t.unlink(e)
		delete(t.entries, k)
		t.release(e)
	}
}

// Flush empties the associative memory (e.g. on program switch).
func (t *TLB) Flush() {
	for k, e := range t.entries {
		delete(t.entries, k)
		t.release(e)
	}
	t.head, t.tail = nil, nil
}

// Len reports the number of valid entries.
func (t *TLB) Len() int { return len(t.entries) }

// Stats reports hit and miss counts.
func (t *TLB) Stats() (hits, misses int64) { return t.hits, t.misses }

// HitRatio reports hits / (hits+misses), 0 when unused.
func (t *TLB) HitRatio() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}
