package trace

import (
	"testing"
	"testing/quick"
)

func sample() Trace {
	return Trace{
		{Op: Read, Name: 0},
		{Op: Write, Name: 1},
		{Op: Advise, Name: 512, Advice: WillNeed, Span: 512},
		{Op: Read, Name: 513},
		{Op: Read, Name: 513},
		{Op: Read, Name: 1025},
	}
}

func TestCounts(t *testing.T) {
	tr := sample()
	if tr.Reads() != 4 {
		t.Errorf("Reads = %d, want 4", tr.Reads())
	}
	if tr.Writes() != 1 {
		t.Errorf("Writes = %d, want 1", tr.Writes())
	}
	if tr.Advises() != 1 {
		t.Errorf("Advises = %d, want 1", tr.Advises())
	}
}

func TestAccesses(t *testing.T) {
	acc := sample().Accesses()
	if len(acc) != 5 {
		t.Fatalf("Accesses len = %d, want 5", len(acc))
	}
	for _, r := range acc {
		if r.Op == Advise {
			t.Fatal("Accesses retained an Advise event")
		}
	}
}

func TestNamesFirstTouchOrder(t *testing.T) {
	names := sample().Names()
	want := []uint64{0, 1, 513, 1025}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestMaxName(t *testing.T) {
	if got := sample().MaxName(); got != 1025 {
		t.Errorf("MaxName = %d, want 1025", got)
	}
	if got := (Trace{}).MaxName(); got != 0 {
		t.Errorf("empty MaxName = %d, want 0", got)
	}
	// Advise names must not count.
	tr := Trace{{Op: Advise, Name: 9999, Advice: WillNeed}}
	if got := tr.MaxName(); got != 0 {
		t.Errorf("advise-only MaxName = %d, want 0", got)
	}
}

func TestPageString(t *testing.T) {
	ps := sample().PageString(512)
	want := []uint64{0, 1, 2}
	if len(ps) != len(want) {
		t.Fatalf("PageString = %v, want %v", ps, want)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("PageString = %v, want %v", ps, want)
		}
	}
}

func TestPageStringDedupsConsecutiveOnly(t *testing.T) {
	tr := Trace{
		{Op: Read, Name: 0},
		{Op: Read, Name: 1},   // same page as 0
		{Op: Read, Name: 512}, // page 1
		{Op: Read, Name: 2},   // back to page 0: must reappear
	}
	ps := tr.PageString(512)
	want := []uint64{0, 1, 0}
	if len(ps) != len(want) {
		t.Fatalf("PageString = %v, want %v", ps, want)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("PageString = %v, want %v", ps, want)
		}
	}
}

func TestPageStringZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PageString(0) did not panic")
		}
	}()
	sample().PageString(0)
}

func TestAdviceString(t *testing.T) {
	for a, want := range map[Advice]string{
		NoAdvice: "none", WillNeed: "will-need",
		WontNeed: "wont-need", KeepResident: "keep-resident",
		Advice(9): "Advice(?)",
	} {
		if got := a.String(); got != want {
			t.Errorf("Advice(%d) = %q, want %q", int(a), got, want)
		}
	}
}

func TestPropertyPageStringWithinRange(t *testing.T) {
	f := func(names []uint16) bool {
		tr := make(Trace, len(names))
		for i, n := range names {
			tr[i] = Ref{Op: Read, Name: uint64(n)}
		}
		for _, p := range tr.PageString(64) {
			if p > uint64(^uint16(0))/64 {
				return false
			}
		}
		// Dedup invariant: no two consecutive equal pages.
		ps := tr.PageString(64)
		for i := 1; i < len(ps); i++ {
			if ps[i] == ps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
