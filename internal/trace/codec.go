package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrSyntax reports a malformed trace line during decoding.
var ErrSyntax = errors.New("trace: syntax error")

// Encode writes the trace in a line-oriented text format, one event per
// line:
//
//	R <name> [<segment>]        read
//	W <name> [<segment>]        write
//	A <advice> <name> <span>    advisory directive
//
// where <advice> is will-need, wont-need or keep-resident. Lines
// beginning with '#' and blank lines are comments on input. The format
// is stable, diff-friendly, and lets recorded workloads be replayed
// across machines (experiment T4 style).
func Encode(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for i, r := range t {
		var err error
		switch r.Op {
		case Read, Write:
			op := "R"
			if r.Op == Write {
				op = "W"
			}
			if r.Seg != "" {
				_, err = fmt.Fprintf(bw, "%s %d %s\n", op, r.Name, r.Seg)
			} else {
				_, err = fmt.Fprintf(bw, "%s %d\n", op, r.Name)
			}
		case Advise:
			_, err = fmt.Fprintf(bw, "A %s %d %d\n", adviceToken(r.Advice), r.Name, r.Span)
		default:
			return fmt.Errorf("trace: event %d has unknown op %d", i, r.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func adviceToken(a Advice) string {
	switch a {
	case WillNeed:
		return "will-need"
	case WontNeed:
		return "wont-need"
	case KeepResident:
		return "keep-resident"
	default:
		return "none"
	}
}

func adviceFromToken(s string) (Advice, bool) {
	switch s {
	case "will-need":
		return WillNeed, true
	case "wont-need":
		return WontNeed, true
	case "keep-resident":
		return KeepResident, true
	default:
		return NoAdvice, false
	}
}

// Decode reads a trace in the Encode format.
func Decode(r io.Reader) (Trace, error) {
	var out Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "R", "W":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("%w: line %d: %q", ErrSyntax, lineNo, line)
			}
			name, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad name %q", ErrSyntax, lineNo, fields[1])
			}
			ref := Ref{Op: Read, Name: name}
			if fields[0] == "W" {
				ref.Op = Write
			}
			if len(fields) == 3 {
				ref.Seg = fields[2]
			}
			out = append(out, ref)
		case "A":
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: line %d: %q", ErrSyntax, lineNo, line)
			}
			adv, ok := adviceFromToken(fields[1])
			if !ok {
				return nil, fmt.Errorf("%w: line %d: bad advice %q", ErrSyntax, lineNo, fields[1])
			}
			name, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad name %q", ErrSyntax, lineNo, fields[2])
			}
			span, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad span %q", ErrSyntax, lineNo, fields[3])
			}
			out = append(out, Ref{Op: Advise, Advice: adv, Name: name, Span: span})
		default:
			return nil, fmt.Errorf("%w: line %d: unknown op %q", ErrSyntax, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
