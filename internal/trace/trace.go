// Package trace defines the reference-string model every experiment
// runs on: a sequence of named storage references, optionally tagged
// with a segment symbol and with advisory directives (the paper's
// "predictive information").
//
// Traces can be generated (package workload), recorded from a run, and
// replayed against any configured storage allocation system, which is
// how the same workload is pushed through all seven appendix machines
// in experiment T4.
package trace

// Op is the kind of a trace event.
type Op int

const (
	// Read references a name for reading.
	Read Op = iota
	// Write references a name for writing (sets the modified sensor of
	// the holding page, which replacement policies may consult).
	Write
	// Advise carries predictive information instead of an access.
	Advise
)

// Advice enumerates the advisory directives of the paper's second
// characteristic, modeled on the IBM M44/44X special instructions and
// the MULTICS programmer provisions.
type Advice int

const (
	// NoAdvice is the zero value; present only on non-Advise events.
	NoAdvice Advice = iota
	// WillNeed indicates the information will shortly be needed
	// (M44/44X "a page will shortly be needed"; MULTICS (ii)).
	WillNeed
	// WontNeed indicates the information will not be needed for some
	// time (M44/44X second instruction; MULTICS (iii)).
	WontNeed
	// KeepResident requests permanent residence in working storage
	// (MULTICS (i)).
	KeepResident
)

// String names the advice as in the paper's discussion.
func (a Advice) String() string {
	switch a {
	case NoAdvice:
		return "none"
	case WillNeed:
		return "will-need"
	case WontNeed:
		return "wont-need"
	case KeepResident:
		return "keep-resident"
	default:
		return "Advice(?)"
	}
}

// Ref is a single trace event.
type Ref struct {
	// Op is the event kind.
	Op Op
	// Name is the name-space name referenced (or advised about).
	Name uint64
	// Seg optionally carries a segment symbol for segmented systems;
	// empty for pure linear name spaces.
	Seg string
	// Advice is the directive when Op == Advise.
	Advice Advice
	// Span is the extent in words the advice covers (Advise only).
	Span uint64
}

// Trace is an ordered reference string.
type Trace []Ref

// Reads counts Read events.
func (t Trace) Reads() int { return t.count(Read) }

// Writes counts Write events.
func (t Trace) Writes() int { return t.count(Write) }

// Advises counts Advise events.
func (t Trace) Advises() int { return t.count(Advise) }

func (t Trace) count(op Op) int {
	n := 0
	for _, r := range t {
		if r.Op == op {
			n++
		}
	}
	return n
}

// Accesses returns the trace with advice events stripped: the pure
// reference string, as needed by offline policies such as Belady MIN.
func (t Trace) Accesses() Trace {
	out := make(Trace, 0, len(t))
	for _, r := range t {
		if r.Op != Advise {
			out = append(out, r)
		}
	}
	return out
}

// Names returns the distinct names referenced, in first-touch order.
func (t Trace) Names() []uint64 {
	seen := make(map[uint64]bool)
	var names []uint64
	for _, r := range t {
		if r.Op == Advise {
			continue
		}
		if !seen[r.Name] {
			seen[r.Name] = true
			names = append(names, r.Name)
		}
	}
	return names
}

// MaxName returns the largest name referenced, or 0 for an empty trace.
func (t Trace) MaxName() uint64 {
	var m uint64
	for _, r := range t {
		if r.Op != Advise && r.Name > m {
			m = r.Name
		}
	}
	return m
}

// PageString maps the trace onto page numbers for a given page size,
// dropping advice and deduplicating *consecutive* references to the
// same page (the granularity at which replacement studies such as
// Belady's operate).
func (t Trace) PageString(pageSize uint64) []uint64 {
	if pageSize == 0 {
		panic("trace: zero page size")
	}
	var out []uint64
	last := uint64(0)
	first := true
	for _, r := range t {
		if r.Op == Advise {
			continue
		}
		p := r.Name / pageSize
		if first || p != last {
			out = append(out, p)
			last = p
			first = false
		}
	}
	return out
}
