package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := Trace{
		{Op: Read, Name: 0},
		{Op: Write, Name: 512},
		{Op: Read, Name: 7, Seg: "alpha"},
		{Op: Advise, Advice: WillNeed, Name: 1024, Span: 512},
		{Op: Advise, Advice: WontNeed, Name: 0, Span: 256},
		{Op: Advise, Advice: KeepResident, Name: 2048, Span: 128},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("len = %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], tr[i])
		}
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nR 5\n  # indented comment\nW 6\n"
	got, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != 5 || got[1].Op != Write {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeSyntaxErrors(t *testing.T) {
	cases := []string{
		"X 5",
		"R",
		"R notanumber",
		"R 1 seg extra",
		"A will-need 5",
		"A bogus 5 10",
		"A will-need x 10",
		"A will-need 5 x",
	}
	for _, in := range cases {
		if _, err := Decode(strings.NewReader(in)); !errors.Is(err, ErrSyntax) {
			t.Errorf("Decode(%q) err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestEncodeFormat(t *testing.T) {
	var buf bytes.Buffer
	err := Encode(&buf, Trace{
		{Op: Read, Name: 3},
		{Op: Advise, Advice: WillNeed, Name: 9, Span: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "R 3\nA will-need 9 2\n"
	if buf.String() != want {
		t.Errorf("encoded %q, want %q", buf.String(), want)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(names []uint32, ops []bool) bool {
		tr := make(Trace, 0, len(names))
		for i, n := range names {
			op := Read
			if i < len(ops) && ops[i] {
				op = Write
			}
			tr = append(tr, Ref{Op: op, Name: uint64(n)})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
