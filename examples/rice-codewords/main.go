// rice-codewords reproduces the Appendix A.4 scenario: the Rice
// University computer's codeword scheme, where a codeword names both a
// segment and an index register whose contents are automatically added
// to the segment base on access ("the equivalent operation on the
// B5000 would have to be programmed explicitly"). The example walks a
// table of vectors through codewords, then shows the inactive-block
// chain with deferred coalescing at work as segments churn.
//
//	go run ./examples/rice-codewords
package main

import (
	"fmt"
	"log"

	"dsa/internal/addr"
	"dsa/internal/alloc"
	"dsa/internal/replace"
	"dsa/internal/segment"
	"dsa/internal/sim"
	"dsa/internal/store"
)

func main() {
	clock := &sim.Clock{}
	working := store.NewLevel(clock, "core", store.Core, 8192, 1, 0)
	backing := store.NewLevel(clock, "drum", store.Drum, 1<<17, 2500, 1)
	mgr, err := segment.NewManager(segment.Config{
		Clock: clock, Working: working, Backing: backing,
		// The Rice configuration: sequential inactive chain, coalescing
		// deferred until a search fails.
		Placement:    alloc.RiceChain{},
		CoalesceMode: alloc.CoalesceDeferred,
		Replacement:  replace.NewClock(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// A vector segment and its codeword with index register 3.
	if _, err := mgr.Create("vector", 256); err != nil {
		log.Fatal(err)
	}
	for i := addr.Name(0); i < 256; i++ {
		if err := mgr.Write("vector", i, uint64(i*i)); err != nil {
			log.Fatal(err)
		}
	}
	cw := segment.Codeword{Symbol: "vector", IndexReg: 3}

	fmt.Println("codeword access: vector[i] via index register 3")
	for _, base := range []addr.Name{0, 50, 200} {
		if err := mgr.SetIndexReg(3, base); err != nil {
			log.Fatal(err)
		}
		v, err := mgr.ReadCodeword(cw, 5) // vector[base+5]
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  XR3=%-4d codeword[5] -> vector[%d] = %d\n", base, base+5, v)
	}
	// The hardware bound check fires when indexing escapes the segment.
	_ = mgr.SetIndexReg(3, 255)
	if _, err := mgr.ReadCodeword(cw, 5); err != nil {
		fmt.Printf("  XR3=255  codeword[5] -> trapped: %v\n\n", err)
	}

	// Churn segments to populate the inactive-block chain, then force
	// the combining step with an allocation that only fits after
	// adjacent inactive blocks merge.
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("scratch-%02d", i)
		if _, err := mgr.Create(name, 450); err == nil {
			_ = mgr.Touch(name, 0, true)
		}
	}
	for i := 0; i < 16; i++ {
		_ = mgr.Destroy(fmt.Sprintf("scratch-%02d", i))
	}
	before := mgr.Heap().FreeBlockCount()
	if _, err := mgr.Create("big", 4000); err != nil {
		log.Fatal(err)
	}
	if err := mgr.Touch("big", 0, false); err != nil {
		log.Fatal(err)
	}
	after := mgr.Heap().FreeBlockCount()
	c := mgr.Heap().Counters()
	fmt.Println("inactive-block chain (deferred coalescing):")
	fmt.Printf("  free blocks before the 4000-word fetch: %d\n", before)
	fmt.Printf("  free blocks after combining + fetch:    %d\n", after)
	fmt.Printf("  coalesce operations performed:          %d\n", c.Coalesces)
	fmt.Println("\n\"If an inactive block of sufficient size cannot be found, an")
	fmt.Println(" attempt is made to make one by finding groups of adjacent")
	fmt.Println(" inactive blocks which can be combined.\" — A.4")
}
