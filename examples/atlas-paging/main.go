// atlas-paging reproduces the Appendix A.1 scenario: a looping
// scientific program on the Ferranti ATLAS, whose one-level store and
// "learning program" replacement made demand paging practical for the
// first time. The example runs the same loop on ATLAS and on a
// hypothetical ATLAS with plain LRU, showing why the learning policy
// earned its keep on cyclic codes.
//
//	go run ./examples/atlas-paging
package main

import (
	"fmt"
	"log"

	"dsa"
)

func main() {
	// A loop over 36 pages — slightly more than the machine's 32 core
	// frames, the worst case for recency-based replacement.
	loop := dsa.LoopTrace(36, 512, 50)

	atlas, err := dsa.Atlas(1) // historical sizes: 16K core, 96K drum
	if err != nil {
		log.Fatal(err)
	}
	rep, err := atlas.RunLinear(loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s)\n%s\n\n", atlas.Name, atlas.Appendix, atlas.Notes)
	fmt.Println("loop of 36 pages x 50 passes on 32 frames:")
	fmt.Printf("  learning replacement: %5d faults, %9d cycles elapsed\n",
		rep.Paging.Faults, rep.Elapsed)

	// The counterfactual: the same machine shape with LRU replacement,
	// built through the public Config.
	lru, err := dsa.NewSystem(dsa.Config{
		Char: dsa.Characteristics{
			NameSpace:            dsa.LinearSpace,
			ArtificialContiguity: true,
			UniformUnits:         true,
		},
		CoreWords: 16384, CoreAccess: 1,
		BackingWords: 98304, BackingKind: dsa.Drum,
		BackingAccess: 3000, BackingWordTime: 1,
		PageSize: 512, VirtualWords: 98304,
		Replacement: dsa.LRUPolicy,
	})
	if err != nil {
		log.Fatal(err)
	}
	lruRep, err := lru.RunLinear(loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  LRU (counterfactual): %5d faults, %9d cycles elapsed\n",
		lruRep.Paging.Faults, lruRep.Elapsed)

	fmt.Println("\nThe learning program records each page's period of use and")
	fmt.Println("evicts the page predicted to be needed last; LRU evicts exactly")
	fmt.Println("the page the loop needs next.")
}
