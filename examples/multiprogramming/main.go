// multiprogramming demonstrates the paper's fetch-overlap argument
// with real programs on real pagers: "a large space-time product will
// not overly affect the performance of a system if the time spent on
// fetching pages can normally be overlapped with the execution of
// other programs". CPU utilization is measured as the degree of
// multiprogramming rises, first hiding fetch latency and then — when
// core is oversubscribed — collapsing into thrashing.
//
//	go run ./examples/multiprogramming
package main

import (
	"fmt"
	"log"
	"strings"

	"dsa"
)

func main() {
	fmt.Println("Multiprogramming overlap (64 total frames, 3000-cycle fetches)")
	fmt.Println()
	fmt.Printf("%-9s %-15s %-8s %-10s %s\n",
		"programs", "frames/program", "faults", "util", "")
	const totalFrames = 64
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		framesEach := totalFrames / n
		traces := make([]dsa.Trace, n)
		for i := range traces {
			tr, err := dsa.WorkingSetTrace(uint64(10+i), 32*256, 3000)
			if err != nil {
				log.Fatal(err)
			}
			traces[i] = tr
		}
		res, err := dsa.RunMultiprogrammed(dsa.MPConfig{
			Traces:           traces,
			PageSize:         256,
			FramesPerProgram: framesEach,
			FetchLatency:     3000,
			ComputePerRef:    20,
		})
		if err != nil {
			log.Fatal(err)
		}
		var faults int64
		for _, p := range res.Programs {
			faults += p.Faults
		}
		bar := strings.Repeat("#", int(40*res.Utilization))
		fmt.Printf("%-9d %-15d %-8d %-10.3f %s\n",
			n, framesEach, faults, res.Utilization, bar)
	}
	fmt.Println()
	fmt.Println("Utilization climbs while spare programs can run during fetches,")
	fmt.Println("then collapses when per-program allotments fall below the")
	fmt.Println("working set and every program faults constantly.")
}
