// fragmentation-study walks the paper's fourth characteristic end to
// end: it drives the same allocation request stream through the
// placement strategies of the Placement Strategies section, then holds
// the same segment population in uniform pages of sweeping size,
// printing the two fragmentation regimes side by side — external
// fragmentation for variable units, internal ("obscured") waste for
// paging.
//
//	go run ./examples/fragmentation-study
package main

import (
	"fmt"
	"log"

	"dsa/internal/alloc"
	"dsa/internal/machine"
	"dsa/internal/metrics"
	"dsa/internal/sim"
	"dsa/internal/workload"
)

func main() {
	fmt.Println("Part 1 — variable units: placement strategies under churn")
	fmt.Println()
	placementStudy()
	fmt.Println("Part 2 — uniform units: the fragmentation paging obscures")
	fmt.Println()
	pagingStudy()
}

func placementStudy() {
	reqs, err := workload.Requests(sim.NewRNG(8), workload.RequestConfig{
		Dist: workload.SizesBimodal, MinSize: 32, MaxSize: 4096,
		MeanLifetime: 60, Count: 6000,
	})
	if err != nil {
		log.Fatal(err)
	}
	t := &metrics.Table{
		Header: []string{"policy", "failed allocs", "ext frag", "largest free", "probes/alloc"},
	}
	policies := []struct {
		name string
		pol  alloc.Policy
		mode alloc.Mode
	}{
		{"first-fit", alloc.FirstFit{}, alloc.CoalesceImmediate},
		{"best-fit (B5000)", alloc.BestFit{}, alloc.CoalesceImmediate},
		{"two-ended", alloc.TwoEnded{Threshold: 512}, alloc.CoalesceImmediate},
		{"rice chain (A.4)", alloc.RiceChain{}, alloc.CoalesceDeferred},
	}
	for _, pc := range policies {
		h := alloc.New(65536, pc.pol, pc.mode)
		freeAt := map[int][]int{}
		for i, r := range reqs {
			for _, a := range freeAt[i] {
				if err := h.Free(a); err != nil {
					log.Fatal(err)
				}
			}
			if a, err := h.Alloc(r.Size); err == nil && r.Lifetime > 0 {
				freeAt[i+r.Lifetime] = append(freeAt[i+r.Lifetime], a)
			}
		}
		c := h.Counters()
		st := h.Stats()
		t.AddRow(pc.name, c.Failures, st.ExternalFrag(), h.LargestFree(),
			float64(c.Probes)/float64(c.Allocs+c.Failures))
	}
	fmt.Println(t)
}

func pagingStudy() {
	sizes := workload.SegmentSizes(sim.NewRNG(9), 2000, 8192)
	total := 0
	for _, s := range sizes {
		total += s
	}
	t := &metrics.Table{
		Header: []string{"page size", "pages", "internal waste", "waste fraction"},
	}
	for _, ps := range []int{64, 256, 1024, 4096} {
		pages, waste := 0, 0
		for _, s := range sizes {
			pages += machine.PageCount(s, ps)
			waste += machine.PageWaste(s, ps)
		}
		t.AddRow(ps, pages, waste, float64(waste)/float64(total+waste))
	}
	fmt.Println(t)
	fmt.Println(`"Paging just obscures the problem, since the fragmentation occurs`)
	fmt.Println(` within pages." — the waste column is invisible to a frame count.`)
}
