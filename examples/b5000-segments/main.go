// b5000-segments reproduces the Appendix A.3 scenario: an ALGOL
// program on the Burroughs B5000, where the compiler segments code at
// block level, every segment is a unit of allocation of at most 1024
// words, and a 1024x1024 "matrix" is declared as 1024 row segments —
// "the limitation is on contiguous naming and not on apparently
// accessible information".
//
//	go run ./examples/b5000-segments
package main

import (
	"fmt"
	"log"

	"dsa"
)

func main() {
	b5000, err := dsa.B5000(1) // 24K words of core
	if err != nil {
		log.Fatal(err)
	}
	sys := b5000.System
	fmt.Printf("%s (%s)\n%s\n\n", b5000.Name, b5000.Appendix, b5000.Notes)

	// A vector larger than 1024 words cannot be declared...
	if err := sys.Create("big-vector", 4096); err != nil {
		fmt.Printf("ALGOL 'array v[0:4095]' rejected: %v\n\n", err)
	}

	// ...but the compiler trick works: a 64x1024 matrix as 64 row
	// segments (a scaled-down 1024x1024).
	const rows, cols = 64, 1024
	for r := 0; r < rows; r++ {
		if err := sys.Create(rowName(r), cols); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("matrix[%d][%d] declared as %d row segments of %d words\n\n",
		rows, cols, rows, cols)

	// Row-order traversal: each row segment is fetched once on first
	// reference (the B5000 fetch strategy) and stays hot.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c += 8 {
			if err := sys.Touch(rowName(r), dsa.Name(c), true); err != nil {
				log.Fatal(err)
			}
		}
	}
	rep := sys.Report()
	fmt.Println("after row-order traversal:")
	fmt.Printf("  segment fetches:  %d (one per row)\n", rep.SegStats.SegFaults)
	fmt.Printf("  evictions:        %d (working set = one row at a time... core holds %d rows)\n",
		rep.SegStats.Evictions, 24576/cols)
	fmt.Printf("  heap utilization: %.2f, external fragmentation %.2f\n",
		rep.Frag.Utilization(), rep.Frag.ExternalFrag())

	// Column-order traversal touches every row per step: the resident
	// set cycles through all 64 rows repeatedly.
	for c := 0; c < cols; c += 64 {
		for r := 0; r < rows; r++ {
			if err := sys.Touch(rowName(r), dsa.Name(c), false); err != nil {
				log.Fatal(err)
			}
		}
	}
	rep2 := sys.Report()
	fmt.Println("\nafter an additional column-order traversal:")
	fmt.Printf("  segment fetches:  %d (rows refetched as the cyclic policy turns over)\n",
		rep2.SegStats.SegFaults)
	fmt.Printf("  evictions:        %d\n", rep2.SegStats.Evictions)
	fmt.Printf("  writebacks:       %d (modified rows written to drum)\n", rep2.SegStats.Writebacks)
}

func rowName(r int) string { return fmt.Sprintf("matrix-row-%03d", r) }
