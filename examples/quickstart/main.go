// Quickstart: build the paper's recommended storage allocation system,
// run a mixed segment workload through it, and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsa"
)

func main() {
	// The authors' favored configuration: symbolic segments,
	// predictions accepted, artificial contiguity only for large
	// segments, nonuniform units for everything else.
	sys, err := dsa.NewSystem(dsa.Recommended(65536, 1<<20, 1024))
	if err != nil {
		log.Fatal(err)
	}

	// A program's storage: a few small procedure segments, one large
	// array. The small ones live request-sized in the heap; the array
	// is paged behind the mapping device.
	for _, seg := range []struct {
		name   string
		extent dsa.Name
	}{
		{"main-proc", 200},
		{"symbol-table", 600},
		{"io-buffers", 384},
		{"matrix", 64 * 1024},
	} {
		if err := sys.Create(seg.name, seg.extent); err != nil {
			log.Fatal(err)
		}
	}

	// Touch the code and table densely, the matrix sparsely (row sums
	// of a 256x256 row-major matrix).
	for pass := 0; pass < 3; pass++ {
		for off := dsa.Name(0); off < 200; off += 4 {
			must(sys.Touch("main-proc", off, false))
		}
		for off := dsa.Name(0); off < 600; off += 2 {
			must(sys.Touch("symbol-table", off, pass == 0))
		}
	}
	for row := 0; row < 256; row++ {
		for col := 0; col < 256; col += 16 {
			must(sys.Touch("matrix", dsa.Name(row*256+col), false))
		}
	}

	rep := sys.Report()
	fmt.Printf("system: %s\n", rep.Char)
	fmt.Printf("elapsed: %d core cycles\n", rep.Elapsed)
	fmt.Printf("heap segments: %d created, %d fetches, utilization %.2f, external frag %.2f\n",
		rep.SegStats.Creates, rep.SegStats.SegFaults,
		rep.Frag.Utilization(), rep.Frag.ExternalFrag())
	fmt.Printf("paged region:  %d faults, %d page-ins for the large segment\n",
		rep.Paging.Faults, rep.Paging.PageIns)
	fmt.Printf("space-time:    %d word-ticks (%.1f%% spent waiting for fetches)\n",
		rep.SpaceTime.Total(), 100*rep.SpaceTime.WaitFraction())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
