// spacetime reproduces Figure 3 interactively: a working-set program
// under demand paging, with the page-fetch time swept from drum-fast to
// disk-slow. It prints the space-time product split into its active and
// waiting parts, plus an ASCII rendition of the figure's shaded area.
//
//	go run ./examples/spacetime
package main

import (
	"fmt"
	"log"
	"strings"

	"dsa"
)

func main() {
	tr, err := dsa.WorkingSetTrace(42, 64*512, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3 — storage utilization with demand paging")
	fmt.Println("(working-set program, 8 frames of 512 words)")
	fmt.Println()
	fmt.Printf("%-12s %-8s %-14s %-14s %s\n",
		"fetch time", "faults", "active w·t", "waiting w·t", "waiting share")
	for _, access := range []dsa.Time{10, 300, 3000, 30000} {
		sys, err := dsa.NewSystem(dsa.Config{
			Char: dsa.Characteristics{
				NameSpace:            dsa.LinearSpace,
				ArtificialContiguity: true,
				UniformUnits:         true,
			},
			CoreWords: 8 * 512, CoreAccess: 1,
			BackingWords: 64 * 512, BackingKind: dsa.Drum,
			BackingAccess: access, BackingWordTime: 2,
			PageSize: 512, VirtualWords: 64 * 512,
			Replacement: dsa.LRUPolicy,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.RunLinear(tr)
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(40*rep.SpaceTime.WaitFraction()))
		fmt.Printf("%-12d %-8d %-14d %-14d %5.1f%% %s\n",
			access, rep.Paging.Faults,
			rep.SpaceTime.ActiveArea, rep.SpaceTime.WaitingArea,
			100*rep.SpaceTime.WaitFraction(), bar)
	}
	fmt.Println()
	fmt.Println("\"If page fetching is a slow process, a large part of the")
	fmt.Println(" space-time product for a program may well be due to space")
	fmt.Println(" occupied while the program is inactive awaiting further pages.\"")
}
