// sharing demonstrates the paper's claim that "segments form a very
// convenient unit for purposes of information protection and sharing,
// between programs": two programs share one copy of a procedure
// segment under different access rights, illegal subscripts trap, and
// capability violations are caught on every reference.
//
//	go run ./examples/sharing
package main

import (
	"errors"
	"fmt"
	"log"

	"dsa/internal/addr"
	"dsa/internal/alloc"
	"dsa/internal/replace"
	"dsa/internal/segment"
	"dsa/internal/sim"
	"dsa/internal/store"
)

func main() {
	clock := &sim.Clock{}
	working := store.NewLevel(clock, "core", store.Core, 8192, 1, 0)
	backing := store.NewLevel(clock, "drum", store.Drum, 1<<16, 500, 1)
	mgr, err := segment.NewManager(segment.Config{
		Clock: clock, Working: working, Backing: backing,
		Placement: alloc.BestFit{}, Replacement: replace.NewClock(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// A shared library procedure and a private data segment.
	if _, err := mgr.Create("sqrt-proc", 300); err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.Create("alice-data", 200); err != nil {
		log.Fatal(err)
	}
	for i := addr.Name(0); i < 300; i++ {
		if err := mgr.Write("sqrt-proc", i, uint64(0xC0DE0000)+uint64(i)); err != nil {
			log.Fatal(err)
		}
	}

	alice := mgr.NewProgram("alice")
	bob := mgr.NewProgram("bob")
	alice.Grant("sqrt-proc", segment.ReadAccess)
	alice.Grant("alice-data", segment.ReadWriteAccess)
	bob.Grant("sqrt-proc", segment.ReadAccess)

	fmt.Println("capability lists:")
	fmt.Printf("  alice: sqrt-proc=%s, alice-data=%s\n",
		alice.AccessTo("sqrt-proc"), alice.AccessTo("alice-data"))
	fmt.Printf("  bob:   sqrt-proc=%s, alice-data=%s\n\n",
		bob.AccessTo("sqrt-proc"), bob.AccessTo("alice-data"))

	// Both execute the shared procedure: one copy in storage.
	for off := addr.Name(0); off < 300; off += 10 {
		if _, err := alice.Read("sqrt-proc", off); err != nil {
			log.Fatal(err)
		}
		if _, err := bob.Read("sqrt-proc", off); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("both programs executed sqrt-proc; segment fetches: %d (one shared copy)\n\n",
		mgr.Stats().SegFaults)

	// Protection traps.
	show := func(what string, err error) {
		switch {
		case errors.Is(err, segment.ErrProtection):
			fmt.Printf("  %-38s trapped: protection violation\n", what)
		case errors.Is(err, addr.ErrLimit):
			fmt.Printf("  %-38s trapped: subscript violation\n", what)
		case err == nil:
			fmt.Printf("  %-38s permitted\n", what)
		default:
			fmt.Printf("  %-38s error: %v\n", what, err)
		}
	}
	fmt.Println("reference monitor:")
	show("alice writes alice-data[5]", alice.Write("alice-data", 5, 1))
	show("alice writes sqrt-proc[0] (read-only)", alice.Write("sqrt-proc", 0, 0))
	show("bob reads alice-data[5] (no grant)", refErr(bob, "alice-data", 5))
	show("alice reads alice-data[200] (bounds)", refErr(alice, "alice-data", 200))
	fmt.Printf("\nviolations: alice %d, bob %d\n", alice.Violations, bob.Violations)
}

func refErr(p *segment.Program, seg string, off addr.Name) error {
	_, err := p.Read(seg, off)
	return err
}
