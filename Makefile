GO ?= go

.PHONY: ci vet fmt-check lint build test race bench bench-gate profile examples fig sim dist-smoke battery-smoke tcp-smoke scenario-smoke serve-smoke load-smoke

ci: vet fmt-check lint build race bench examples ## full tier-1 + lint + race + bench smoke + examples

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Runs the staticcheck binary when one is
# installed (CI installs a pinned, cached version and enforces it);
# skips gracefully otherwise so tier-1 never needs the network.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI enforces it)"; \
	fi

# Formatting gate: fail if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks come in two speeds. `bench` is the smoke: one iteration
# of every benchmark, proving the experiment battery, the catalog
# shared-vs-regeneration and disk-replay comparisons, the dist round
# trips and the substrate micro-benchmarks still run end to end. It is
# part of `make ci` and measures nothing. `bench-gate` below is the
# measured run that CI actually gates on.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/experiments ./internal/workload/catalog ./internal/engine/dist

# The measured counterpart to the `bench` smoke: the hot-path
# benchmarks (heap alloc/free, TLB lookup, pager touch, replacement
# policies, the whole-battery sweep, dist round trips) at a fixed
# -benchtime/-count, snapshotted to JSON by cmd/dsabenchdiff — which
# keeps the fastest of the -count runs per benchmark, the stable floor
# for regression gating. CI's bench-gate job diffs the snapshot
# against the cached main baseline and fails the build when the
# geomean time ratio regresses by more than 10%; the BENCH_<pr>.json
# files committed at the repo root are local runs of this target, the
# recorded perf trajectory of the hot paths across PRs.
BENCH_GATE_OUT ?= bench-gate
BENCH_GATE_COUNT ?= 3
BENCH_GATE_TIME ?= 200ms
bench-gate:
	@set -e; \
	$(GO) test -run '^$$' -benchmem -count $(BENCH_GATE_COUNT) -benchtime $(BENCH_GATE_TIME) \
		-bench '^(BenchmarkHeapAllocFree|BenchmarkTLBLookup|BenchmarkPagerTouch|BenchmarkReplacementPolicies|BenchmarkAllSweep|BenchmarkDistRoundTrips|BenchmarkMetricsTable|BenchmarkCellSteadyState|BenchmarkWorkloadGen)$$' \
		. ./internal/engine/dist > $(BENCH_GATE_OUT).txt; \
	cat $(BENCH_GATE_OUT).txt; \
	$(GO) run ./cmd/dsabenchdiff parse -o $(BENCH_GATE_OUT).json $(BENCH_GATE_OUT).txt

# Profile the full experiment battery through the CLIs' own
# -cpuprofile/-memprofile flags (every sweep entry point registers
# them via internal/cliflags). The heap profile is written after a
# final GC, so it shows what the battery allocated, not what happened
# to be live. Inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
PROFILE_ARGS ?=
profile:
	$(GO) run ./cmd/dsafig -cpuprofile cpu.pprof -memprofile mem.pprof $(PROFILE_ARGS) > /dev/null
	@echo "profile: wrote cpu.pprof and mem.pprof (go tool pprof <file>)"

# Build every example program, then run the quickstart end to end.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart

fig:
	$(GO) run ./cmd/dsafig

sim:
	$(GO) run ./cmd/dsasim -machine all -workload segments

# Cross-process determinism check: a real multi-process sweep must be
# byte-identical to the in-process pool — per-cell, batched, and
# against a cold or warm workload cache directory — with every cell
# actually distributed (the stderr summary proves no silent local
# fallback) and the warm run actually replaying from disk (the store
# summary proves zero regenerations). CI's dist-smoke job runs this;
# it is cheap enough to run locally.
dist-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/dsasim" ./cmd/dsasim; \
	$(GO) build -o "$$tmp/dsafig" ./cmd/dsafig; \
	"$$tmp/dsasim" -machine all -parallel 2 -workload segments > "$$tmp/sim-parallel.out"; \
	"$$tmp/dsasim" -machine all -workers 2 -workload segments > "$$tmp/sim-workers.out" 2> "$$tmp/sim-workers.err"; \
	cat "$$tmp/sim-workers.err"; \
	cmp "$$tmp/sim-parallel.out" "$$tmp/sim-workers.out"; \
	grep -q "7 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/sim-workers.err"; \
	"$$tmp/dsasim" -machine all -workers 2 -batch 3 -workload segments > "$$tmp/sim-batch.out"; \
	cmp "$$tmp/sim-parallel.out" "$$tmp/sim-batch.out"; \
	"$$tmp/dsafig" -parallel 4 t1 t4 > "$$tmp/fig-parallel.out"; \
	"$$tmp/dsafig" -workers 2 t1 t4 > "$$tmp/fig-workers.out" 2> "$$tmp/fig-workers.err"; \
	cat "$$tmp/fig-workers.err"; \
	cmp "$$tmp/fig-parallel.out" "$$tmp/fig-workers.out"; \
	grep -q "16 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/fig-workers.err"; \
	"$$tmp/dsafig" -workers 2 -batch 4 t1 t4 > "$$tmp/fig-batch.out" 2> "$$tmp/fig-batch.err"; \
	cmp "$$tmp/fig-parallel.out" "$$tmp/fig-batch.out"; \
	grep -q "16 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/fig-batch.err"; \
	"$$tmp/dsafig" -cache-dir "$$tmp/cache" t1 t4 > "$$tmp/fig-cold.out" 2> "$$tmp/fig-cold.err"; \
	cat "$$tmp/fig-cold.err"; \
	cmp "$$tmp/fig-parallel.out" "$$tmp/fig-cold.out"; \
	grep -q "store: 4 generated, 12 hits, 0 disk hits, 4 disk writes" "$$tmp/fig-cold.err"; \
	"$$tmp/dsafig" -cache-dir "$$tmp/cache" t1 t4 > "$$tmp/fig-warm.out" 2> "$$tmp/fig-warm.err"; \
	cat "$$tmp/fig-warm.err"; \
	cmp "$$tmp/fig-parallel.out" "$$tmp/fig-warm.out"; \
	grep -q "store: 0 generated, 12 hits, 4 disk hits, 0 disk writes" "$$tmp/fig-warm.err"; \
	"$$tmp/dsafig" -cache-dir "$$tmp/cache" -workers 2 -batch 4 t1 t4 > "$$tmp/fig-warm-dist.out"; \
	cmp "$$tmp/fig-parallel.out" "$$tmp/fig-warm-dist.out"; \
	echo "dist-smoke: workers, batched, and cached output byte-identical"

# Battery-level determinism check: whole sweeps running concurrently
# over one shared executor (-battery-parallel, plain and combined with
# -workers/-batch/-cache-dir) must be byte-identical to the serial
# battery; the store summaries must match the serial run's exactly
# (concurrent sweeps share the battery store — no duplicate
# generations for shared workloads); and a `dsatrace warm`ed cache
# directory must make the very first battery run against it regenerate
# nothing. CI's dist-smoke job runs this with BATTERY_SMOKE_DIR set so
# the outputs can be uploaded as a debugging artifact on failure.
BATTERY_SMOKE_DIR ?=
battery-smoke:
	@set -e; \
	if [ -n "$(BATTERY_SMOKE_DIR)" ]; then tmp="$(BATTERY_SMOKE_DIR)"; mkdir -p "$$tmp"; \
	else tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; fi; \
	$(GO) build -o "$$tmp/dsasim" ./cmd/dsasim; \
	$(GO) build -o "$$tmp/dsafig" ./cmd/dsafig; \
	$(GO) build -o "$$tmp/dsatrace" ./cmd/dsatrace; \
	"$$tmp/dsafig" -progress > "$$tmp/fig-serial.out" 2> "$$tmp/fig-serial.err"; \
	"$$tmp/dsafig" -battery-parallel 4 -progress > "$$tmp/fig-bp.out" 2> "$$tmp/fig-bp.err"; \
	cmp "$$tmp/fig-serial.out" "$$tmp/fig-bp.out"; \
	grep '^dsafig: store:' "$$tmp/fig-serial.err" > "$$tmp/fig-serial.store"; \
	grep '^dsafig: store:' "$$tmp/fig-bp.err" > "$$tmp/fig-bp.store"; \
	cat "$$tmp/fig-bp.store"; \
	cmp "$$tmp/fig-serial.store" "$$tmp/fig-bp.store"; \
	"$$tmp/dsafig" -battery-parallel 4 -workers 2 -batch 4 -cache-dir "$$tmp/figcache" \
		> "$$tmp/fig-bp-dist.out" 2> "$$tmp/fig-bp-dist.err"; \
	cmp "$$tmp/fig-serial.out" "$$tmp/fig-bp-dist.out"; \
	grep -q "cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/fig-bp-dist.err"; \
	"$$tmp/dsasim" -machine all -workload segments > "$$tmp/sim-serial.out"; \
	"$$tmp/dsasim" -machine all -battery-parallel 4 -workload segments > "$$tmp/sim-bp.out"; \
	cmp "$$tmp/sim-serial.out" "$$tmp/sim-bp.out"; \
	"$$tmp/dsasim" -machine all -battery-parallel 4 -workers 2 -batch 2 -workload segments \
		> "$$tmp/sim-bp-dist.out" 2> "$$tmp/sim-bp-dist.err"; \
	cmp "$$tmp/sim-serial.out" "$$tmp/sim-bp-dist.out"; \
	grep -q "7 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/sim-bp-dist.err"; \
	"$$tmp/dsatrace" warm -cache-dir "$$tmp/warmcache" -machines -workload segments; \
	"$$tmp/dsasim" -machine all -battery-parallel 4 -cache-dir "$$tmp/warmcache" -workload segments \
		> "$$tmp/sim-warm.out" 2> "$$tmp/sim-warm.err"; \
	cat "$$tmp/sim-warm.err"; \
	cmp "$$tmp/sim-serial.out" "$$tmp/sim-warm.out"; \
	grep -q "store: 0 generated" "$$tmp/sim-warm.err"; \
	"$$tmp/dsatrace" warm -cache-dir "$$tmp/tracecache" -kinds workingset,loop -variants 2; \
	"$$tmp/dsatrace" batch -out "$$tmp/traces" -cache-dir "$$tmp/tracecache" -kinds workingset,loop -variants 2 \
		> /dev/null 2> "$$tmp/trace-warm.err"; \
	grep -q "store: 0 generated" "$$tmp/trace-warm.err"; \
	echo "battery-smoke: concurrent battery byte-identical, store shared, warmed cache replays everything"

# Declarative-sweep determinism check: the examples/scenarios/
# t2-mirror.toml file declares exactly the compiled-in t2 sweep, so
# `dsafig -scenario` must reproduce `dsafig t2` byte-for-byte —
# serially, under -parallel, across a real 2-process -workers pool
# (the stderr summary proves every cell crossed the wire), and via
# `dsasim run -scenario` (the second entry point into the same
# compiler). Then the cache contract: a `dsatrace warm -scenario`ed
# directory — covering all three example scenarios, the two new
# workload families included — must make the very first battery run
# against it regenerate nothing. CI's scenario-smoke job runs this
# with SCENARIO_SMOKE_DIR set so the outputs can be uploaded as a
# debugging artifact on failure.
SCENARIO_SMOKE_DIR ?=
scenario-smoke:
	@set -e; \
	if [ -n "$(SCENARIO_SMOKE_DIR)" ]; then tmp="$(SCENARIO_SMOKE_DIR)"; mkdir -p "$$tmp"; \
	else tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; fi; \
	$(GO) build -o "$$tmp/dsasim" ./cmd/dsasim; \
	$(GO) build -o "$$tmp/dsafig" ./cmd/dsafig; \
	$(GO) build -o "$$tmp/dsatrace" ./cmd/dsatrace; \
	mirror=examples/scenarios/t2-mirror.toml; \
	all="$$mirror,examples/scenarios/adversarial-frag.toml,examples/scenarios/phased-machines.toml"; \
	"$$tmp/dsafig" t2 > "$$tmp/t2-compiled.out"; \
	"$$tmp/dsafig" -scenario "$$mirror" > "$$tmp/t2-scenario.out"; \
	cmp "$$tmp/t2-compiled.out" "$$tmp/t2-scenario.out"; \
	"$$tmp/dsafig" -parallel 4 -scenario "$$mirror" > "$$tmp/t2-scenario-par.out"; \
	cmp "$$tmp/t2-compiled.out" "$$tmp/t2-scenario-par.out"; \
	"$$tmp/dsafig" -workers 2 -scenario "$$mirror" \
		> "$$tmp/t2-scenario-dist.out" 2> "$$tmp/t2-scenario-dist.err"; \
	cat "$$tmp/t2-scenario-dist.err"; \
	cmp "$$tmp/t2-compiled.out" "$$tmp/t2-scenario-dist.out"; \
	grep -q "18 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/t2-scenario-dist.err"; \
	"$$tmp/dsasim" run -scenario "$$mirror" > "$$tmp/t2-scenario-sim.out"; \
	cmp "$$tmp/t2-compiled.out" "$$tmp/t2-scenario-sim.out"; \
	"$$tmp/dsatrace" warm -cache-dir "$$tmp/scencache" -scenario "$$all"; \
	"$$tmp/dsafig" -cache-dir "$$tmp/scencache" -scenario "$$all" \
		> "$$tmp/scen-warm.out" 2> "$$tmp/scen-warm.err"; \
	cat "$$tmp/scen-warm.err"; \
	grep -q "store: 0 generated" "$$tmp/scen-warm.err"; \
	"$$tmp/dsafig" -workers 2 -cache-dir "$$tmp/scencache" -scenario "$$all" \
		> "$$tmp/scen-warm-dist.out" 2> "$$tmp/scen-warm-dist.err"; \
	cmp "$$tmp/scen-warm.out" "$$tmp/scen-warm-dist.out"; \
	echo "scenario-smoke: declarative t2 byte-identical everywhere; warmed scenarios regenerate nothing"

# Remote-transport determinism and fault-containment check: sweeps
# dialed through real localhost TCP serve-workers (two pool slots on
# one server, plain and under -battery-parallel, with an auth token)
# must be byte-identical to the serial runs with every cell remote —
# the stderr summary proves no silent local fallback — and the
# fault-injection suite (worker kill mid-batch, stalled link, corrupt
# frame, budget exhaustion) must hold under -race. CI's tcp-smoke job
# runs this with TCP_SMOKE_DIR set so the outputs can be uploaded as a
# debugging artifact on failure.
TCP_SMOKE_DIR ?=
tcp-smoke:
	@set -e; \
	if [ -n "$(TCP_SMOKE_DIR)" ]; then tmp="$(TCP_SMOKE_DIR)"; mkdir -p "$$tmp"; keep=1; \
	else tmp=$$(mktemp -d); keep=; fi; \
	pids=; \
	trap 'kill $$pids 2>/dev/null || true; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/dsasim" ./cmd/dsasim; \
	$(GO) build -o "$$tmp/dsafig" ./cmd/dsafig; \
	"$$tmp/dsasim" -machine all -workload segments > "$$tmp/sim-serial.out"; \
	"$$tmp/dsafig" t1 t4 > "$$tmp/fig-serial.out"; \
	"$$tmp/dsasim" serve-worker -listen 127.0.0.1:0 -addr-file "$$tmp/sim-worker.addr" -auth-token smoke \
		2> "$$tmp/sim-worker.err" & pids="$$!"; \
	"$$tmp/dsafig" serve-worker -listen 127.0.0.1:0 -addr-file "$$tmp/fig-worker.addr" -auth-token smoke \
		2> "$$tmp/fig-worker.err" & pids="$$pids $$!"; \
	for f in sim-worker.addr fig-worker.addr; do \
		i=0; while [ ! -s "$$tmp/$$f" ]; do \
			i=$$((i+1)); if [ $$i -gt 500 ]; then echo "tcp-smoke: $$f never appeared"; exit 1; fi; \
			sleep 0.02; done; \
	done; \
	simaddr=$$(cat "$$tmp/sim-worker.addr"); figaddr=$$(cat "$$tmp/fig-worker.addr"); \
	"$$tmp/dsasim" -machine all -remote "$$simaddr,$$simaddr" -auth-token smoke -workload segments \
		> "$$tmp/sim-tcp.out" 2> "$$tmp/sim-tcp.err"; \
	cat "$$tmp/sim-tcp.err"; \
	cmp "$$tmp/sim-serial.out" "$$tmp/sim-tcp.out"; \
	grep -q "7 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/sim-tcp.err"; \
	"$$tmp/dsafig" -remote "$$figaddr,$$figaddr" -auth-token smoke t1 t4 \
		> "$$tmp/fig-tcp.out" 2> "$$tmp/fig-tcp.err"; \
	cat "$$tmp/fig-tcp.err"; \
	cmp "$$tmp/fig-serial.out" "$$tmp/fig-tcp.out"; \
	grep -q "16 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/fig-tcp.err"; \
	"$$tmp/dsafig" -battery-parallel 4 -remote "$$figaddr,$$figaddr" -auth-token smoke -batch 4 t1 t4 \
		> "$$tmp/fig-tcp-bp.out" 2> "$$tmp/fig-tcp-bp.err"; \
	cmp "$$tmp/fig-serial.out" "$$tmp/fig-tcp-bp.out"; \
	grep -q "16 cells in 2 workers, 0 in-process, 0 crashes" "$$tmp/fig-tcp-bp.err"; \
	$(GO) test -race -count=1 -run 'TCP|Fault|Frame|RemoteLocal' ./internal/engine/dist; \
	echo "tcp-smoke: remote TCP output byte-identical; fault-injection suite green under -race"

# Sweep-service determinism check: a `dsasim serve` daemon's streamed
# output must be byte-identical to the serial CLI for both a registry
# sweep (t2) and an uploaded scenario file (the PR 8 compiler as API
# payload), and re-fetching a completed result by its content-addressed
# key must regenerate nothing — the daemon's /stats (job counters plus
# the store summary) is captured before and after the fetch and must
# not change by a byte. CI's serve-smoke job runs this with
# SERVE_SMOKE_DIR set so the outputs can be uploaded as a debugging
# artifact on failure.
SERVE_SMOKE_DIR ?=
serve-smoke:
	@set -e; \
	if [ -n "$(SERVE_SMOKE_DIR)" ]; then tmp="$(SERVE_SMOKE_DIR)"; mkdir -p "$$tmp"; keep=1; \
	else tmp=$$(mktemp -d); keep=; fi; \
	pids=; \
	trap 'kill $$pids 2>/dev/null || true; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/dsasim" ./cmd/dsasim; \
	$(GO) build -o "$$tmp/dsafig" ./cmd/dsafig; \
	$(GO) build -o "$$tmp/dsabench" ./cmd/dsabench; \
	mirror=examples/scenarios/t2-mirror.toml; \
	"$$tmp/dsafig" t2 > "$$tmp/cli-t2.out"; \
	"$$tmp/dsafig" -scenario "$$mirror" > "$$tmp/cli-mirror.out"; \
	"$$tmp/dsasim" serve -listen 127.0.0.1:0 -addr-file "$$tmp/serve.addr" -cache-dir "$$tmp/cache" \
		2> "$$tmp/serve.err" & pids="$$!"; \
	i=0; while [ ! -s "$$tmp/serve.addr" ]; do \
		i=$$((i+1)); if [ $$i -gt 500 ]; then echo "serve-smoke: serve.addr never appeared"; exit 1; fi; \
		sleep 0.02; done; \
	addr=$$(cat "$$tmp/serve.addr"); \
	"$$tmp/dsabench" submit -url "http://$$addr" -experiments t2 -key-file "$$tmp/t2.key" \
		> "$$tmp/served-t2.out"; \
	cmp "$$tmp/cli-t2.out" "$$tmp/served-t2.out"; \
	"$$tmp/dsabench" submit -url "http://$$addr" -scenario-file "$$mirror" > "$$tmp/served-mirror.out"; \
	cmp "$$tmp/cli-mirror.out" "$$tmp/served-mirror.out"; \
	"$$tmp/dsabench" stats -url "http://$$addr" > "$$tmp/stats-before.json"; \
	"$$tmp/dsabench" fetch -url "http://$$addr" -key "$$(cat "$$tmp/t2.key")" > "$$tmp/fetched-t2.out"; \
	cmp "$$tmp/cli-t2.out" "$$tmp/fetched-t2.out"; \
	"$$tmp/dsabench" stats -url "http://$$addr" > "$$tmp/stats-after.json"; \
	cat "$$tmp/stats-after.json"; \
	cmp "$$tmp/stats-before.json" "$$tmp/stats-after.json"; \
	grep -q '"store":"6 generated' "$$tmp/stats-after.json"; \
	kill -TERM $$pids; wait $$pids; pids=; \
	grep -q '^dsasim: store:' "$$tmp/serve.err"; \
	echo "serve-smoke: served streams byte-identical to the CLI; fetch-by-key regenerated nothing"

# Sweep-service load check: a burst of concurrent submissions against a
# deliberately tiny cell budget must come back all 2xx/429 (back-
# pressure, never errors) with sane latency percentiles, the daemon
# must drain cleanly on SIGTERM (exit 0), and the in-process half —
# TestServeLoadNoGoroutineLeak — must show the goroutine count
# returning to baseline after shutdown. CI's serve-smoke job runs this
# with LOAD_SMOKE_DIR set for failure artifacts.
LOAD_SMOKE_DIR ?=
load-smoke:
	@set -e; \
	if [ -n "$(LOAD_SMOKE_DIR)" ]; then tmp="$(LOAD_SMOKE_DIR)"; mkdir -p "$$tmp"; keep=1; \
	else tmp=$$(mktemp -d); keep=; fi; \
	pids=; \
	trap 'kill $$pids 2>/dev/null || true; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/dsasim" ./cmd/dsasim; \
	$(GO) build -o "$$tmp/dsabench" ./cmd/dsabench; \
	"$$tmp/dsasim" serve -listen 127.0.0.1:0 -addr-file "$$tmp/serve.addr" -parallel 2 \
		2> "$$tmp/serve.err" & pids="$$!"; \
	i=0; while [ ! -s "$$tmp/serve.addr" ]; do \
		i=$$((i+1)); if [ $$i -gt 500 ]; then echo "load-smoke: serve.addr never appeared"; exit 1; fi; \
		sleep 0.02; done; \
	addr=$$(cat "$$tmp/serve.addr"); \
	"$$tmp/dsabench" load -url "http://$$addr" -n 220 -c 60 -experiments t1 | tee "$$tmp/load.out"; \
	kill -TERM $$pids; wait $$pids; pids=; \
	grep -q '^dsasim: serve: shutting down' "$$tmp/serve.err"; \
	$(GO) test -count=1 -run 'TestServeLoadNoGoroutineLeak' -v ./internal/serve | tail -3; \
	echo "load-smoke: 2xx/429 only under load; clean SIGTERM drain; no goroutine leak"
