GO ?= go

.PHONY: ci vet fmt-check build test race bench examples fig sim

ci: vet fmt-check build race bench examples ## full tier-1 + race + bench smoke + examples

vet:
	$(GO) vet ./...

# Formatting gate: fail if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke that the experiment
# battery, the catalog shared-vs-regeneration comparison and the
# substrate micro-benchmarks still run end to end.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/experiments

# Build every example program, then run the quickstart end to end.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart

fig:
	$(GO) run ./cmd/dsafig

sim:
	$(GO) run ./cmd/dsasim -machine all -workload segments
