GO ?= go

.PHONY: ci vet build test race bench fig sim

ci: vet build race bench ## full tier-1 + race + bench smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke that the experiment
# battery and substrate micro-benchmarks still run end to end.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

fig:
	$(GO) run ./cmd/dsafig

sim:
	$(GO) run ./cmd/dsasim -machine all -workload segments
